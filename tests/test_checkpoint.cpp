// Checkpoint format unit tests: exact round-trips, resume semantics on
// analytic cells, shard partitioning, and — the part that matters when a
// month-long campaign dies at 3am — corruption handling: a truncated
// final line (the kill artifact) is dropped and rerun, while garbled
// content, mismatched headers, wrong seeds, and conflicting duplicates
// are clean CheckpointErrors, never silently wrong results.

#include "exp/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gridsub::exp {
namespace {

CampaignAxes small_axes(std::size_t scenarios = 3, std::size_t strategies = 2,
                        std::size_t reps = 4) {
  CampaignAxes axes;
  axes.name = "ckpt-test";
  for (std::size_t i = 0; i < scenarios; ++i) {
    axes.scenario_labels.push_back("sc" + std::to_string(i));
  }
  for (std::size_t i = 0; i < strategies; ++i) {
    axes.strategy_labels.push_back("st" + std::to_string(i));
  }
  axes.replications = reps;
  axes.root_seed = 42;
  return axes;
}

CellMetrics analytic_cell(const CellContext& ctx) {
  return {{"value", static_cast<double>(ctx.seed % 1000) / 7.0},
          {"index", static_cast<double>(ctx.flat)}};
}

/// Fresh per-test temp file path (removed up front; best-effort cleanup).
std::string temp_path(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gridsub_test_checkpoint";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(CheckpointFormat, HeaderRoundTrips) {
  const CampaignAxes axes = small_axes();
  std::stringstream ss;
  write_checkpoint_header(ss, axes, CampaignShard{1, 3});
  const CampaignCheckpoint ck = read_checkpoint(ss, "mem");
  EXPECT_TRUE(same_campaign(ck.axes, axes));
  EXPECT_EQ(ck.shard.index, 1u);
  EXPECT_EQ(ck.shard.count, 3u);
  EXPECT_TRUE(ck.cells.empty());
  EXPECT_FALSE(ck.complete());
  EXPECT_FALSE(ck.dropped_partial_tail);
}

TEST(CheckpointFormat, AwkwardLabelCharactersSurvive) {
  CampaignAxes axes = small_axes(1, 1, 1);
  axes.name = "quote\" slash\\ tab\t newline\n ctrl\x01 done";
  axes.scenario_labels = {"week \"0\""};
  std::stringstream ss;
  write_checkpoint_header(ss, axes);
  EXPECT_TRUE(same_campaign(read_checkpoint(ss, "mem").axes, axes));
}

TEST(CheckpointFormat, CellMetricsRoundTripExactly) {
  CampaignAxes axes = small_axes(1, 1, 1);
  CellResult cell;
  cell.context = axes.cell(0);
  // Doubles chosen to stress shortest-form printing: non-terminating
  // binary fractions, extreme magnitudes, negatives, and a NaN (written
  // as null, read back as NaN).
  cell.metrics = {{"a", 0.1},
                  {"b", 1.0 / 3.0},
                  {"c", -3.5e300},
                  {"d", 5e-324},
                  {"e", 12345678901234.5},
                  {"nan", std::numeric_limits<double>::quiet_NaN()}};
  std::stringstream ss;
  write_checkpoint_header(ss, axes);
  append_checkpoint_cell(ss, cell);
  const CampaignCheckpoint ck = read_checkpoint(ss, "mem");
  ASSERT_EQ(ck.cells.size(), 1u);
  ASSERT_EQ(ck.cells[0].metrics.size(), cell.metrics.size());
  for (std::size_t m = 0; m + 1 < cell.metrics.size(); ++m) {
    EXPECT_EQ(ck.cells[0].metrics[m].first, cell.metrics[m].first);
    // Bit-exact, not approximately equal: resume must reproduce bytes.
    EXPECT_EQ(ck.cells[0].metrics[m].second, cell.metrics[m].second);
  }
  EXPECT_TRUE(std::isnan(ck.cells[0].metrics.back().second));
  EXPECT_TRUE(ck.complete());
}

TEST(CheckpointResume, InterruptedRunResumesByteIdentically) {
  const CampaignAxes axes = small_axes();
  const std::string reference =
      CampaignRunner().run(axes, analytic_cell).to_json();

  const std::string path = temp_path("resume.ckpt");
  CampaignOptions options;
  options.checkpoint_path = path;
  // First pass dies on a third of the grid — the completed cells are
  // already on disk when the failure surfaces.
  EXPECT_THROW(
      (void)CampaignRunner(options).run(axes,
                                        [](const CellContext& ctx) {
                                          if (ctx.flat % 3 == 2) {
                                            throw std::runtime_error("kill");
                                          }
                                          return analytic_cell(ctx);
                                        }),
      std::runtime_error);

  // Second pass evaluates only the missing cells and reproduces the
  // uninterrupted bytes.
  std::atomic<int> evaluated{0};
  const CampaignResult resumed =
      CampaignRunner(options).run(axes, [&](const CellContext& ctx) {
        ++evaluated;
        EXPECT_EQ(ctx.flat % 3, 2u);  // finished cells must not rerun
        return analytic_cell(ctx);
      });
  EXPECT_EQ(resumed.to_json(), reference);
  EXPECT_EQ(evaluated.load(), 8);  // 24 cells, every third failed

  // A third pass finds everything done and evaluates nothing.
  const CampaignResult complete =
      CampaignRunner(options).run(axes, [](const CellContext&) -> CellMetrics {
        ADD_FAILURE() << "complete checkpoint re-evaluated a cell";
        return {};
      });
  EXPECT_EQ(complete.to_json(), reference);
}

TEST(CheckpointResume, PartialTrailingLineIsDroppedAndRerun) {
  const CampaignAxes axes = small_axes();
  const std::string reference =
      CampaignRunner().run(axes, analytic_cell).to_json();

  const std::string path = temp_path("partial-tail.ckpt");
  CampaignOptions options;
  options.checkpoint_path = path;
  (void)CampaignRunner(options).run(axes, analytic_cell);

  // Clip the final record mid-metrics — what a kill -9 during the last
  // append leaves behind.
  std::string bytes = slurp(path);
  const std::size_t last_line = bytes.rfind('\n', bytes.size() - 2);
  ASSERT_NE(last_line, std::string::npos);
  bytes.resize(last_line + 1 + 25);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
  }
  const CampaignCheckpoint ck = load_checkpoint(path);
  EXPECT_TRUE(ck.dropped_partial_tail);
  EXPECT_EQ(ck.cells.size(), axes.cell_count() - 1);

  std::atomic<int> evaluated{0};
  const CampaignResult resumed =
      CampaignRunner(options).run(axes, [&](const CellContext& ctx) {
        ++evaluated;
        return analytic_cell(ctx);
      });
  EXPECT_EQ(evaluated.load(), 1);
  EXPECT_EQ(resumed.to_json(), reference);
  // The resume truncated the junk tail before appending, so the file is
  // whole again — a further read (e.g. a merge) must see every cell.
  const CampaignCheckpoint healed = load_checkpoint(path);
  EXPECT_TRUE(healed.complete());
  EXPECT_FALSE(healed.dropped_partial_tail);
}

TEST(CheckpointResume, AppendAfterKeptUnterminatedTailStaysParseable) {
  const CampaignAxes axes = small_axes();
  const std::string reference =
      CampaignRunner().run(axes, analytic_cell).to_json();

  // Interrupted run: some cells on disk, the rest missing.
  const std::string path = temp_path("kept-tail.ckpt");
  CampaignOptions options;
  options.checkpoint_path = path;
  EXPECT_THROW(
      (void)CampaignRunner(options).run(axes,
                                        [](const CellContext& ctx) {
                                          if (ctx.flat % 2 == 1) {
                                            throw std::runtime_error("kill");
                                          }
                                          return analytic_cell(ctx);
                                        }),
      std::runtime_error);

  // Clip exactly the final newline: the tail is complete JSON and is
  // kept, but the writer must re-terminate it before appending or the
  // next record glues onto the same line.
  std::string bytes = slurp(path);
  ASSERT_EQ(bytes.back(), '\n');
  bytes.pop_back();
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
  }
  const CampaignResult resumed =
      CampaignRunner(options).run(axes, analytic_cell);
  EXPECT_EQ(resumed.to_json(), reference);
  const CampaignCheckpoint healed = load_checkpoint(path);
  EXPECT_TRUE(healed.complete());
  EXPECT_FALSE(healed.dropped_partial_tail);
}

TEST(CheckpointResume, ClippedFirstHeaderWriteStartsFresh) {
  const CampaignAxes axes = small_axes();
  const std::string reference =
      CampaignRunner().run(axes, analytic_cell).to_json();

  // A kill during the very first (header) write leaves a newline-less
  // fragment; resuming must start fresh, not abort, and must heal the
  // file rather than appending after the junk.
  const std::string path = temp_path("clipped-header.ckpt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "{\"schema\": \"gridsub-ch";
  }
  CampaignOptions options;
  options.checkpoint_path = path;
  const CampaignResult result =
      CampaignRunner(options).run(axes, analytic_cell);
  EXPECT_EQ(result.to_json(), reference);
  const CampaignCheckpoint healed = load_checkpoint(path);
  EXPECT_TRUE(healed.complete());
  EXPECT_FALSE(healed.dropped_partial_tail);
}

TEST(CheckpointResume, RefusesToOverwriteAnUnrelatedNewlineLessFile) {
  // The clipped-header leniency must only apply to actual clipped
  // headers: pointing checkpoint_path at some other newline-less file is
  // a clean error, never silent destruction of that file.
  const std::string path = temp_path("unrelated.txt.ckpt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "important unrelated one-line file without trailing newline";
  }
  CampaignOptions options;
  options.checkpoint_path = path;
  const CampaignAxes axes = small_axes();
  EXPECT_THROW((void)CampaignRunner(options).run(axes, analytic_cell),
               CheckpointError);
  EXPECT_EQ(slurp(path),
            "important unrelated one-line file without trailing newline");
}

TEST(CheckpointCorruption, GarbledTerminatedLineIsACleanError) {
  const std::string path = temp_path("garbled.ckpt");
  CampaignOptions options;
  options.checkpoint_path = path;
  const CampaignAxes axes = small_axes();
  (void)CampaignRunner(options).run(axes, analytic_cell);

  // Flip bytes in the middle of a *newline-terminated* record: unlike a
  // clipped tail this can only be corruption, so resuming must refuse
  // loudly instead of quietly recomputing (or worse, half-trusting) it.
  std::string bytes = slurp(path);
  const std::size_t pos = bytes.find("\"metrics\"", bytes.find('\n') + 1);
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 9, "\"met?ics\"");
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
  }
  EXPECT_THROW((void)load_checkpoint(path), CheckpointError);
  EXPECT_THROW((void)CampaignRunner(options).run(axes, analytic_cell),
               CheckpointError);
}

TEST(CheckpointCorruption, BadSchemaOrMissingHeaderThrows) {
  {
    std::stringstream ss;
    ss << "{\"schema\": \"something-else-v9\"}\n";
    EXPECT_THROW((void)read_checkpoint(ss, "mem"), CheckpointError);
  }
  {
    std::stringstream empty;
    EXPECT_THROW((void)read_checkpoint(empty, "mem"), CheckpointError);
  }
}

TEST(CheckpointCorruption, DifferentCampaignOrShardRefusesToResume) {
  const std::string path = temp_path("mismatch.ckpt");
  CampaignOptions options;
  options.checkpoint_path = path;
  const CampaignAxes axes = small_axes();
  (void)CampaignRunner(options).run(axes, analytic_cell);

  // Same grid shape, different root seed: all recorded cells would carry
  // foreign RNG streams.
  CampaignAxes other = axes;
  other.root_seed = 43;
  EXPECT_THROW((void)CampaignRunner(options).run(other, analytic_cell),
               CheckpointError);
  // A whole-grid run must not silently adopt a shard's partial file.
  CampaignOptions shard_options;
  shard_options.checkpoint_path = temp_path("mismatch-shard.ckpt");
  shard_options.shard = {0, 3};
  const CampaignRunner shard_runner(shard_options);
  EXPECT_GT(shard_runner.run_shard(axes, analytic_cell), 0u);
  options.checkpoint_path = shard_options.checkpoint_path;
  EXPECT_THROW((void)CampaignRunner(options).run(axes, analytic_cell),
               CheckpointError);
}

TEST(CheckpointCorruption, WrongSeedOrCellIndexThrows) {
  const CampaignAxes axes = small_axes();
  {
    std::stringstream ss;
    write_checkpoint_header(ss, axes);
    ss << "{\"cell\": 0, \"seed\": 1, \"metrics\": {\"v\": 1}}\n";
    EXPECT_THROW((void)read_checkpoint(ss, "mem"), CheckpointError);
  }
  {
    std::stringstream ss;
    write_checkpoint_header(ss, axes);
    ss << "{\"cell\": 24, \"seed\": 1, \"metrics\": {\"v\": 1}}\n";
    EXPECT_THROW((void)read_checkpoint(ss, "mem"), CheckpointError);
  }
}

TEST(CheckpointCorruption, DuplicateRecordsMustAgree) {
  const CampaignAxes axes = small_axes();
  CellResult cell;
  cell.context = axes.cell(5);
  cell.metrics = {{"v", 1.25}};
  std::stringstream ss;
  write_checkpoint_header(ss, axes);
  append_checkpoint_cell(ss, cell);
  append_checkpoint_cell(ss, cell);  // benign duplicate
  const CampaignCheckpoint ck = read_checkpoint(ss, "mem");
  EXPECT_EQ(ck.cells.size(), 1u);

  cell.metrics = {{"v", 2.5}};
  append_checkpoint_cell(ss, cell);  // conflicting duplicate
  ss.clear();
  ss.seekg(0);
  EXPECT_THROW((void)read_checkpoint(ss, "mem"), CheckpointError);

  // NaN metrics (written as null) must not turn identical duplicates
  // into conflicts: record equality is bitwise, not operator==.
  std::stringstream nan_ss;
  write_checkpoint_header(nan_ss, axes);
  cell.metrics = {{"v", std::numeric_limits<double>::quiet_NaN()}};
  append_checkpoint_cell(nan_ss, cell);
  append_checkpoint_cell(nan_ss, cell);
  EXPECT_EQ(read_checkpoint(nan_ss, "mem").cells.size(), 1u);
}

TEST(CheckpointShard, ThreeShardsMergeToTheCanonicalResult) {
  const CampaignAxes axes = small_axes();
  const std::string reference =
      CampaignRunner().run(axes, analytic_cell).to_json();

  std::vector<CampaignCheckpoint> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    CampaignOptions options;
    options.checkpoint_path =
        temp_path("shard" + std::to_string(i) + ".ckpt");
    options.shard = {i, 3};
    const std::size_t evaluated =
        CampaignRunner(options).run_shard(axes, analytic_cell);
    EXPECT_EQ(evaluated, axes.cell_count() / 3);
    // Shard runs resume too: immediately rerunning evaluates nothing.
    EXPECT_EQ(CampaignRunner(options).run_shard(axes, analytic_cell), 0u);
    shards.push_back(load_checkpoint(options.checkpoint_path));
  }
  EXPECT_EQ(merge_checkpoints(std::move(shards)).to_json(), reference);
}

TEST(CheckpointShard, MergeRejectsIncompleteOrForeignShards) {
  const CampaignAxes axes = small_axes();
  CampaignOptions options;
  options.checkpoint_path = temp_path("lonely-shard.ckpt");
  options.shard = {0, 3};
  (void)CampaignRunner(options).run_shard(axes, analytic_cell);
  std::vector<CampaignCheckpoint> shards;
  shards.push_back(load_checkpoint(options.checkpoint_path));
  // Two of three shards never ran.
  EXPECT_THROW((void)merge_checkpoints(std::move(shards)), CheckpointError);

  CampaignAxes other = small_axes();
  other.name = "other-campaign";
  std::stringstream ss;
  write_checkpoint_header(ss, other);
  std::vector<CampaignCheckpoint> mixed;
  mixed.push_back(load_checkpoint(options.checkpoint_path));
  mixed.push_back(read_checkpoint(ss, "mem"));
  EXPECT_THROW((void)merge_checkpoints(std::move(mixed)), CheckpointError);
  EXPECT_THROW((void)merge_checkpoints({}), CheckpointError);
}

TEST(CheckpointShard, RunRejectsMultiShardOptionsAndMissingPath) {
  const CampaignAxes axes = small_axes();
  CampaignOptions sharded;
  sharded.checkpoint_path = temp_path("reject.ckpt");
  sharded.shard = {1, 3};
  EXPECT_THROW((void)CampaignRunner(sharded).run(axes, analytic_cell),
               std::invalid_argument);
  CampaignOptions pathless;
  pathless.shard = {1, 3};
  EXPECT_THROW(
      (void)CampaignRunner(pathless).run_shard(axes, analytic_cell),
      std::invalid_argument);
  EXPECT_THROW((CampaignShard{3, 3}.validate()), std::invalid_argument);
  EXPECT_THROW((CampaignShard{0, 0}.validate()), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::exp
