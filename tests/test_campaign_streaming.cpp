// End-to-end equivalence of the streaming campaign path: the streamed
// JSON must be byte-identical to the buffered CampaignResult::write_json
// at any thread count, across an interrupt + resume, and when a shard
// checkpoint feeds a sink — the determinism contract the constant-memory
// pipeline must not bend.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/checkpoint.hpp"
#include "exp/fold.hpp"
#include "parallel/thread_pool.hpp"

namespace gridsub::exp {
namespace {

CampaignAxes streaming_axes() {
  CampaignAxes axes;
  axes.name = "streaming_equivalence";
  axes.scenario_axis = "scenario";
  axes.strategy_axis = "strategy";
  axes.scenario_labels = {"s0", "s1", "s2", "s3"};
  axes.strategy_labels = {"a", "b", "c"};
  axes.replications = 4;
  axes.root_seed = 20090611;
  return axes;
}

/// Deterministic, mildly irregular metrics (NaN included: the JSON null
/// round-trip must stream identically too).
CellMetrics synthetic_cell(const CellContext& ctx) {
  const double v = static_cast<double>(ctx.seed % 99991) / 997.0;
  CellMetrics metrics{{"value", v}, {"twice", 2.0 * v}};
  if (ctx.flat == 5) metrics.emplace_back("oddball", 0.0 / 0.0);
  if (ctx.flat != 5) metrics.emplace_back("oddball", -v);
  return metrics;
}

std::string temp_path(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gridsub_test_streaming";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

std::string streamed_json(const CampaignAxes& axes, par::ThreadPool* pool,
                          const std::string& checkpoint = "") {
  CampaignOptions options;
  options.pool = pool;
  options.checkpoint_path = checkpoint;
  std::ostringstream os;
  JsonStreamSink sink(os);
  CampaignRunner(options).run_with_sink(axes, synthetic_cell, sink);
  (void)sink.take();
  return os.str();
}

TEST(CampaignStreaming, StreamedJsonMatchesBufferedAtAnyThreadCount) {
  const CampaignAxes axes = streaming_axes();
  const std::string buffered =
      CampaignRunner().run(axes, synthetic_cell).to_json();

  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    EXPECT_EQ(streamed_json(axes, &pool), buffered)
        << "streamed output diverged at " << threads << " threads";
  }
}

TEST(CampaignStreaming, FoldSinkSummaryMatchesBufferedAggregates) {
  const CampaignAxes axes = streaming_axes();
  const CampaignResult result = CampaignRunner().run(axes, synthetic_cell);

  par::ThreadPool pool(8);
  CampaignOptions options;
  options.pool = &pool;
  FoldSink sink;
  CampaignRunner(options).run_with_sink(axes, synthetic_cell, sink);
  const CampaignSummary summary = sink.take();

  ASSERT_EQ(summary.rows.size(), result.aggregates().size());
  for (std::size_t sc = 0; sc < axes.scenario_labels.size(); ++sc) {
    for (std::size_t st = 0; st < axes.strategy_labels.size(); ++st) {
      EXPECT_DOUBLE_EQ(summary.mean(sc, st, "value"),
                       result.mean(sc, st, "value"));
      EXPECT_DOUBLE_EQ(summary.sem(sc, st, "value"),
                       result.sem(sc, st, "value"));
    }
  }
}

TEST(CampaignStreaming, InterruptedResumeStreamsIdenticalJson) {
  const CampaignAxes axes = streaming_axes();
  par::ThreadPool pool(4);
  const std::string reference = streamed_json(axes, &pool);

  // Straight-through run with a checkpoint, then simulate a kill: keep the
  // header plus roughly half the records and clip the last kept line
  // mid-record (the classic torn final append).
  const std::string path = temp_path("interrupted.ckpt");
  (void)streamed_json(axes, &pool, path);
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), axes.cell_count() / 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::size_t keep = 1 + axes.cell_count() / 2;
    for (std::size_t i = 0; i + 1 < keep; ++i) out << lines[i] << "\n";
    out << lines[keep - 1].substr(0, lines[keep - 1].size() / 2);
  }

  // The resumed streamed run must replay restored cells and evaluate the
  // rest into byte-identical JSON.
  EXPECT_EQ(streamed_json(axes, &pool, path), reference);
}

TEST(CampaignStreaming, ShardSinkStreamsOwnedSubsetInOrder) {
  const CampaignAxes axes = streaming_axes();
  CampaignOptions options;
  options.shard.index = 1;
  options.shard.count = 3;
  options.checkpoint_path = temp_path("shard1of3.ckpt");

  // A shard never closes whole (scenario, strategy) groups, so an
  // aggregate sink is the wrong consumer here; probe the delivery order
  // instead.
  class Probe final : public CampaignSink {
   public:
    void on_cell(const CellResult& cell) override {
      flats.push_back(cell.context.flat);
    }
    std::vector<std::size_t> flats;
  } probe;
  const std::size_t evaluated =
      CampaignRunner(options).run_shard(axes, synthetic_cell, &probe);

  std::size_t expected = 0;
  for (std::size_t flat = 0; flat < axes.cell_count(); ++flat) {
    if (flat % 3 == 1) ++expected;
  }
  EXPECT_EQ(evaluated, expected);
  ASSERT_EQ(probe.flats.size(), expected);
  for (std::size_t i = 1; i < probe.flats.size(); ++i) {
    EXPECT_LT(probe.flats[i - 1], probe.flats[i]);
  }
  for (const std::size_t flat : probe.flats) EXPECT_EQ(flat % 3, 1u);
}

TEST(CampaignStreaming, JsonFileStreamMatchesInMemoryStream) {
  const CampaignAxes axes = streaming_axes();
  par::ThreadPool pool(2);
  const std::string reference = streamed_json(axes, &pool);

  const std::string path = temp_path("streamed.json");
  {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os.is_open());
    JsonStreamSink sink(os);
    CampaignOptions options;
    options.pool = &pool;
    CampaignRunner(options).run_with_sink(axes, synthetic_cell, sink);
    const CampaignSummary summary = sink.take();
    EXPECT_EQ(summary.rows.size(),
              axes.scenario_labels.size() * axes.strategy_labels.size());
  }
  std::ifstream is(path, std::ios::binary);
  const std::string on_disk((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, reference);
}

}  // namespace
}  // namespace gridsub::exp
