// Goodness-of-fit statistics: Anderson-Darling, chi-square, DKW.

#include "stats/gof.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/lognormal.hpp"
#include "stats/rng.hpp"
#include "stats/uniform.hpp"
#include "stats/weibull.hpp"

namespace gridsub::stats {
namespace {

std::vector<double> sample_from(const Distribution& dist, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(AndersonDarling, SmallForCorrectModel) {
  const LogNormal dist(6.0, 0.8);
  const auto xs = sample_from(dist, 2000, 1);
  // A2 for a correct simple hypothesis is ~1 in expectation; 2.5 is the
  // classic 5% critical value.
  EXPECT_LT(anderson_darling(xs, dist), 2.5);
}

TEST(AndersonDarling, LargeForWrongModel) {
  const LogNormal truth(6.0, 0.8);
  const auto xs = sample_from(truth, 2000, 2);
  const Weibull wrong(3.0, 400.0);
  EXPECT_GT(anderson_darling(xs, wrong), 50.0);
}

TEST(AndersonDarling, MoreSensitiveInTheTailThanKs) {
  // Contaminate the upper tail only: AD reacts much more than its own
  // clean-sample level, demonstrating the tail weighting.
  const LogNormal dist(6.0, 0.8);
  auto xs = sample_from(dist, 2000, 3);
  const double clean = anderson_darling(xs, dist);
  for (std::size_t i = 0; i < 40; ++i) {
    xs.push_back(40000.0 + 100.0 * static_cast<double>(i));
  }
  const double contaminated = anderson_darling(xs, dist);
  EXPECT_GT(contaminated, 10.0 * std::max(clean, 0.5));
}

TEST(AndersonDarling, RejectsEmptySample) {
  const LogNormal dist(6.0, 0.8);
  EXPECT_THROW((void)anderson_darling({}, dist), std::invalid_argument);
}

TEST(ChiSquare, NearDofForCorrectModel) {
  const LogNormal dist(6.0, 0.8);
  const auto xs = sample_from(dist, 4000, 4);
  const std::size_t bins = 20;
  const double stat = chi_square_gof(xs, dist, bins);
  // E[chi2] = bins - 1 = 19; allow a generous band.
  EXPECT_GT(stat, 5.0);
  EXPECT_LT(stat, 45.0);
}

TEST(ChiSquare, HugeForWrongModel) {
  const LogNormal truth(6.0, 0.8);
  const auto xs = sample_from(truth, 4000, 5);
  const UniformDist wrong(0.0, 10000.0);
  EXPECT_GT(chi_square_gof(xs, wrong, 20), 1000.0);
}

TEST(ChiSquare, ValidatesArguments) {
  const LogNormal dist(6.0, 0.8);
  EXPECT_THROW((void)chi_square_gof({}, dist, 10), std::invalid_argument);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)chi_square_gof(xs, dist, 1), std::invalid_argument);
}

TEST(Dkw, MatchesClosedForm) {
  EXPECT_NEAR(dkw_epsilon(100, 0.05),
              std::sqrt(std::log(2.0 / 0.05) / 200.0), 1e-12);
  // Quadrupling the sample halves the band.
  EXPECT_NEAR(dkw_epsilon(400, 0.05), 0.5 * dkw_epsilon(100, 0.05), 1e-12);
}

TEST(Dkw, CoversTheEcdfEmpirically) {
  // The band is a guarantee: check coverage over many replications.
  const LogNormal dist(6.0, 0.8);
  const std::size_t n = 300;
  const double eps = dkw_epsilon(n, 0.05);
  Rng rng(6);
  int violations = 0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    std::vector<double> xs(n);
    for (auto& x : xs) x = dist.sample(rng);
    std::sort(xs.begin(), xs.end());
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double f = dist.cdf(xs[i]);
      worst = std::max(worst,
                       std::max(std::abs(f - static_cast<double>(i) / n),
                                std::abs(static_cast<double>(i + 1) / n -
                                         f)));
    }
    if (worst > eps) ++violations;
  }
  // Nominal failure rate 5%; DKW is conservative, so observed should be
  // clearly below ~10% of reps.
  EXPECT_LT(violations, reps / 10);
}

TEST(Dkw, ValidatesArguments) {
  EXPECT_THROW((void)dkw_epsilon(0, 0.05), std::invalid_argument);
  EXPECT_THROW((void)dkw_epsilon(100, 0.0), std::invalid_argument);
  EXPECT_THROW((void)dkw_epsilon(100, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::stats
