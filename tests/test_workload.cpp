#include "traces/workload.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gridsub::traces {
namespace {

Workload sample_workload() {
  Workload w("sample");
  w.add_job(0.0, 100.0, 7, 1);
  w.add_job(30.0, 50.0, 8, 1);
  w.add_job(90.0, 200.0, 7, 2);
  w.add_job(3600.0, 10.0);
  return w;
}

TEST(Workload, CsvRoundTrips) {
  const Workload original = sample_workload();
  std::stringstream ss;
  write_workload_csv(ss, original);
  const Workload restored = read_workload_csv(ss);
  EXPECT_EQ(restored.name(), original.name());
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.jobs()[i].arrival, original.jobs()[i].arrival);
    EXPECT_DOUBLE_EQ(restored.jobs()[i].runtime, original.jobs()[i].runtime);
    EXPECT_EQ(restored.jobs()[i].user, original.jobs()[i].user);
    EXPECT_EQ(restored.jobs()[i].group, original.jobs()[i].group);
  }
}

TEST(Workload, CsvPreservesFullPrecision) {
  // Week-scale arrivals with sub-second offsets must survive the
  // round-trip; the 6-sig-fig ostream default would quantize them.
  Workload w("precise");
  w.add_job(604800.25, 0.125);
  w.add_job(24192000.5, 1.0 / 3.0);
  std::stringstream ss;
  write_workload_csv(ss, w);
  const Workload r = read_workload_csv(ss);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.jobs()[0].arrival, 604800.25);
  EXPECT_DOUBLE_EQ(r.jobs()[0].runtime, 0.125);
  EXPECT_DOUBLE_EQ(r.jobs()[1].arrival, 24192000.5);
  EXPECT_DOUBLE_EQ(r.jobs()[1].runtime, 1.0 / 3.0);
}

TEST(Workload, CsvReadsCrlfAndComments) {
  std::stringstream ss;
  ss << "# name=windows-week\r\n"
     << "arrival_time,runtime,user,group\r\n"
     << "0,100,7,1\r\n"
     << "# a stray comment between rows\r\n"
     << "30,50,-1,-1\r\n";
  const Workload w = read_workload_csv(ss);
  EXPECT_EQ(w.name(), "windows-week");
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.jobs()[1].arrival, 30.0);
  EXPECT_EQ(w.jobs()[1].user, -1);
}

TEST(Workload, CsvRejectsMalformedRow) {
  std::stringstream ss;
  ss << "arrival_time,runtime,user,group\n0,100\n";
  EXPECT_THROW(read_workload_csv(ss), std::runtime_error);
}

TEST(Workload, CsvRejectsNonNumericRow) {
  std::stringstream ss;
  ss << "arrival_time,runtime,user,group\n0,abc,1,1\n";
  EXPECT_THROW(read_workload_csv(ss), std::runtime_error);
}

TEST(Workload, CsvRejectsMissingHeader) {
  std::stringstream ss;
  ss << "0,100,1,1\n";
  EXPECT_THROW(read_workload_csv(ss), std::runtime_error);
}

TEST(Workload, CsvReaderSortsByArrival) {
  std::stringstream ss;
  ss << "arrival_time,runtime,user,group\n"
     << "90,1,0,0\n"
     << "10,1,0,0\n"
     << "50,1,0,0\n";
  const Workload w = read_workload_csv(ss);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.jobs()[0].arrival, 10.0);
  EXPECT_DOUBLE_EQ(w.jobs()[2].arrival, 90.0);
}

TEST(Workload, WindowCutsAndRebases) {
  const Workload w = sample_workload();
  const Workload cut = w.window(30.0, 3600.0);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_DOUBLE_EQ(cut.jobs()[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(cut.jobs()[1].arrival, 60.0);
  EXPECT_THROW(w.window(10.0, 5.0), std::invalid_argument);
}

TEST(Workload, ScalingKnobs) {
  Workload w = sample_workload();
  w.scale_time(0.5);
  EXPECT_DOUBLE_EQ(w.duration(), 1800.0);
  w.scale_runtime(2.0);
  EXPECT_DOUBLE_EQ(w.jobs()[0].runtime, 200.0);
  EXPECT_THROW(w.scale_time(0.0), std::invalid_argument);
  EXPECT_THROW(w.scale_runtime(-1.0), std::invalid_argument);
}

TEST(Workload, RebaseToZero) {
  Workload w("offset");
  w.add_job(1000.0, 1.0);
  w.add_job(1500.0, 1.0);
  w.rebase_to_zero();
  EXPECT_DOUBLE_EQ(w.jobs()[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(w.jobs()[1].arrival, 500.0);
}

TEST(Workload, StatsCaptureBurstiness) {
  // 100 jobs in the first hour, 1 job much later: strongly bursty.
  Workload w("bursty");
  for (int i = 0; i < 100; ++i) w.add_job(i * 30.0, 10.0);
  w.add_job(10.0 * 3600.0, 10.0);
  const auto s = w.stats();
  EXPECT_EQ(s.jobs, 101u);
  EXPECT_DOUBLE_EQ(s.duration, 36000.0);
  EXPECT_GT(s.burstiness, 5.0);

  Workload empty;
  const auto e = empty.stats();
  EXPECT_EQ(e.jobs, 0u);
  EXPECT_DOUBLE_EQ(e.mean_rate, 0.0);
}

}  // namespace
}  // namespace gridsub::traces
