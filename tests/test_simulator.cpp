#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsub::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_at(10.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(5.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_EQ(sim.processed_events(), 2u);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(100.0, [&] {
    sim.schedule_in(50.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelSuppressesEvent) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(4.0, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::sim
