// Strategy planner: recommendation logic and cross-period evaluation.

#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"
#include "traces/datasets.hpp"

namespace gridsub::core {
namespace {

model::DiscretizedLatencyModel shared_model() {
  static const auto m =
      testutil::discretize(testutil::make_heavy_model(0.05, 4000.0), 1.0);
  return m;
}

TEST(Planner, MinLatencyObjectivePicksTheFastestWithinBudget) {
  const auto m = shared_model();
  const StrategyPlanner planner(m);
  PlannerOptions options;
  options.objective = PlannerOptions::Objective::kMinLatency;
  options.max_parallel_jobs = 10.0;
  options.max_b = 10;
  const auto rec = planner.recommend(options);
  // With a 10-copy budget, b = 10 multiple submission dominates latency.
  EXPECT_EQ(rec.choice.kind, StrategyKind::kMultipleSubmission);
  EXPECT_EQ(rec.choice.b, 10);
  for (const auto& c : rec.candidates) {
    if (!std::isfinite(c.expectation) || c.n_parallel > 10.0) continue;
    EXPECT_GE(c.expectation, rec.choice.expectation - 1e-9);
  }
}

TEST(Planner, BudgetConstraintIsRespected) {
  const auto m = shared_model();
  const StrategyPlanner planner(m);
  PlannerOptions options;
  options.objective = PlannerOptions::Objective::kMinLatency;
  options.max_parallel_jobs = 1.6;
  options.max_b = 10;
  const auto rec = planner.recommend(options);
  EXPECT_LE(rec.choice.n_parallel, 1.6);
  // A delayed configuration should win here (b >= 2 is excluded).
  EXPECT_EQ(rec.choice.kind, StrategyKind::kDelayedResubmission);
}

TEST(Planner, MinCostObjectiveNeverExceedsBaselineCost) {
  const auto m = shared_model();
  const StrategyPlanner planner(m);
  PlannerOptions options;
  options.objective = PlannerOptions::Objective::kMinCost;
  const auto rec = planner.recommend(options);
  EXPECT_LE(rec.choice.delta_cost, 1.0 + 1e-9);
}

TEST(Planner, RationaleMentionsTheChosenStrategy) {
  const auto m = shared_model();
  const StrategyPlanner planner(m);
  const auto rec = planner.recommend();
  EXPECT_NE(rec.rationale.find(std::string(to_string(rec.choice.kind))),
            std::string::npos);
}

TEST(Planner, CandidatesIncludeAllThreeFamilies) {
  const auto m = shared_model();
  const StrategyPlanner planner(m);
  const auto rec = planner.recommend();
  bool has_single = false, has_multi = false, has_delayed = false;
  for (const auto& c : rec.candidates) {
    has_single |= c.kind == StrategyKind::kSingleResubmission;
    has_multi |= c.kind == StrategyKind::kMultipleSubmission;
    has_delayed |= c.kind == StrategyKind::kDelayedResubmission;
  }
  EXPECT_TRUE(has_single);
  EXPECT_TRUE(has_multi);
  EXPECT_TRUE(has_delayed);
}

TEST(Planner, RejectsBadOptions) {
  const auto m = shared_model();
  const StrategyPlanner planner(m);
  PlannerOptions options;
  options.max_b = 0;
  EXPECT_THROW(planner.recommend(options), std::invalid_argument);
}

TEST(Planner, CrossWeekTransferDegradesGracefully) {
  // Paper §7.2 / Table 6: parameters tuned on week w-1 evaluated on week w
  // lose a bounded amount of Δcost. Build two consecutive synthetic weeks
  // and check the transfer penalty is small.
  const auto trace_prev = traces::make_trace_by_name("2007-52");
  const auto trace_next = traces::make_trace_by_name("2007-53");
  const auto m_prev =
      model::DiscretizedLatencyModel::from_trace(trace_prev, 1.0);
  const auto m_next =
      model::DiscretizedLatencyModel::from_trace(trace_next, 1.0);
  const StrategyPlanner planner_prev(m_prev);
  const StrategyPlanner planner_next(m_next);

  const auto tuned_prev = planner_prev.cost_model().optimize_delayed_cost();
  const auto own_next = planner_next.cost_model().optimize_delayed_cost();
  const auto transferred =
      planner_next.evaluate_delayed_params(tuned_prev.t0, tuned_prev.t_inf);

  EXPECT_GE(transferred.delta_cost, own_next.delta_cost - 1e-9);
  // The paper observes <= 6% degradation week-over-week; synthetic weeks
  // are differently shaped, so allow a wider but still bounded band.
  EXPECT_LT(transferred.delta_cost, own_next.delta_cost * 1.35);
}

}  // namespace
}  // namespace gridsub::core
