#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numerics/integration.hpp"
#include "stats/empirical.hpp"
#include "stats/kde.hpp"
#include "stats/lognormal.hpp"

namespace gridsub::stats {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  LogNormal d(5.5, 0.8);
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.sample(rng);
  return xs;
}

TEST(Empirical, CdfIsTheStepFunction) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 5.0};
  const EmpiricalDistribution e(xs);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.cdf(4.9), 0.75);
  EXPECT_DOUBLE_EQ(e.cdf(5.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(99.0), 1.0);
}

TEST(Empirical, MeanVarianceMatchSample) {
  const std::vector<double> xs{2.0, 4.0, 6.0, 8.0};
  const EmpiricalDistribution e(xs);
  EXPECT_DOUBLE_EQ(e.mean(), 5.0);
  EXPECT_NEAR(e.variance(), 20.0 / 3.0, 1e-12);
}

TEST(Empirical, QuantileInterpolatesOrderStatistics) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  const EmpiricalDistribution e(xs);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 15.0);
}

TEST(Empirical, BootstrapSamplingOnlyReturnsDataPoints) {
  const std::vector<double> xs{3.0, 1.0, 4.0};
  const EmpiricalDistribution e(xs);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double s = e.sample(rng);
    EXPECT_TRUE(s == 1.0 || s == 3.0 || s == 4.0);
  }
}

TEST(Empirical, ConvergesToTrueCdf) {
  const auto xs = lognormal_sample(50000, 42);
  const EmpiricalDistribution e(xs);
  const LogNormal d(5.5, 0.8);
  for (double x : {100.0, 250.0, 500.0, 1000.0}) {
    EXPECT_NEAR(e.cdf(x), d.cdf(x), 0.01) << "x=" << x;
  }
}

TEST(Empirical, RejectsEmptySample) {
  const std::vector<double> empty;
  EXPECT_THROW(EmpiricalDistribution{empty}, std::invalid_argument);
}

TEST(Kde, PdfIntegratesToOne) {
  const auto xs = lognormal_sample(2000, 7);
  const KernelDensity kde(xs);
  const double mass = numerics::adaptive_simpson(
      [&](double x) { return kde.pdf(x); }, -2000.0, 20000.0, 1e-8);
  EXPECT_NEAR(mass, 1.0, 1e-3);
}

TEST(Kde, CdfMatchesIntegralOfPdf) {
  const auto xs = lognormal_sample(500, 11);
  const KernelDensity kde(xs);
  const double x_ref = 300.0;
  const double integral = numerics::adaptive_simpson(
      [&](double x) { return kde.pdf(x); }, -2000.0, x_ref, 1e-9);
  EXPECT_NEAR(kde.cdf(x_ref), integral, 1e-4);
}

TEST(Kde, ApproximatesTrueDensity) {
  const auto xs = lognormal_sample(50000, 13);
  const KernelDensity kde(xs);
  const LogNormal d(5.5, 0.8);
  for (double x : {150.0, 250.0, 400.0}) {
    EXPECT_NEAR(kde.pdf(x), d.pdf(x), 0.25 * d.pdf(x)) << "x=" << x;
  }
}

TEST(Kde, SilvermanBandwidthScalesWithN) {
  const auto xs_small = lognormal_sample(100, 17);
  const auto xs_large = lognormal_sample(10000, 17);
  EXPECT_GT(KernelDensity::silverman_bandwidth(xs_small),
            KernelDensity::silverman_bandwidth(xs_large));
}

TEST(Kde, ExplicitBandwidthIsUsed) {
  const auto xs = lognormal_sample(100, 19);
  const KernelDensity kde(xs, 12.5);
  EXPECT_DOUBLE_EQ(kde.bandwidth(), 12.5);
}

TEST(Kde, WindowedEvaluationMatchesFullSumFarFromTail) {
  // Evaluating far from all samples must return ~0, not garbage.
  const auto xs = lognormal_sample(1000, 23);
  const KernelDensity kde(xs);
  EXPECT_NEAR(kde.pdf(1e7), 0.0, 1e-12);
  EXPECT_NEAR(kde.cdf(1e7), 1.0, 1e-12);
  EXPECT_NEAR(kde.cdf(-1e7), 0.0, 1e-12);
}

}  // namespace
}  // namespace gridsub::stats
