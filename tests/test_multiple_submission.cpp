// Multiple-submission strategy (paper §5, eqs. 3-4).

#include "core/multiple_submission.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/single_resubmission.hpp"
#include "test_util.hpp"

namespace gridsub::core {
namespace {

model::DiscretizedLatencyModel shared_model() {
  static const auto m =
      testutil::discretize(testutil::make_heavy_model(0.05, 4000.0), 1.0);
  return m;
}

TEST(MultipleSubmission, BEqualsOneMatchesSingleResubmission) {
  const auto m = shared_model();
  const MultipleSubmission multi(m, 1);
  const SingleResubmission single(m);
  for (double t : {200.0, 600.0, 1500.0}) {
    EXPECT_DOUBLE_EQ(multi.expectation(t), single.expectation(t));
    EXPECT_DOUBLE_EQ(multi.std_deviation(t), single.std_deviation(t));
  }
}

TEST(MultipleSubmission, ExpectationDecreasesWithB) {
  // The paper's Table 2 headline: at any fixed timeout, more copies means
  // smaller expected latency.
  const auto m = shared_model();
  const double t_inf = 800.0;
  double prev = 1e300;
  for (int b = 1; b <= 10; ++b) {
    const MultipleSubmission multi(m, b);
    const double ej = multi.expectation(t_inf);
    EXPECT_LT(ej, prev) << "b=" << b;
    prev = ej;
  }
}

TEST(MultipleSubmission, OptimalExpectationDecreasesWithB) {
  const auto m = shared_model();
  double prev = 1e300;
  for (int b = 1; b <= 10; ++b) {
    const auto opt = MultipleSubmission(m, b).optimize();
    EXPECT_LT(opt.metrics.expectation, prev) << "b=" << b;
    prev = opt.metrics.expectation;
  }
}

TEST(MultipleSubmission, MarginalGainOfExtraCopyShrinks) {
  // Paper Table 2, third column group: Delta E_J (b)/(b-1) decays.
  const auto m = shared_model();
  double e1 = MultipleSubmission(m, 1).optimize().metrics.expectation;
  double e2 = MultipleSubmission(m, 2).optimize().metrics.expectation;
  double e3 = MultipleSubmission(m, 3).optimize().metrics.expectation;
  double e6 = MultipleSubmission(m, 6).optimize().metrics.expectation;
  double e7 = MultipleSubmission(m, 7).optimize().metrics.expectation;
  const double gain_2 = (e1 - e2) / e1;
  const double gain_3 = (e2 - e3) / e2;
  const double gain_7 = (e6 - e7) / e6;
  EXPECT_GT(gain_2, gain_3);
  EXPECT_GT(gain_3, gain_7);
}

TEST(MultipleSubmission, SigmaDecreasesWithBAtOptimum) {
  // Paper: "the standard deviation sigma_J is also decreasing,
  // concentrating the values of J around E_J".
  const auto m = shared_model();
  const double s1 =
      MultipleSubmission(m, 1).optimize().metrics.std_deviation;
  const double s5 =
      MultipleSubmission(m, 5).optimize().metrics.std_deviation;
  const double s10 =
      MultipleSubmission(m, 10).optimize().metrics.std_deviation;
  EXPECT_GT(s1, s5);
  EXPECT_GT(s5, s10);
}

TEST(MultipleSubmission, CollectionCdfSubstitutionIsExact) {
  // E_J for b copies on F̃ equals E_J for b = 1 on 1-(1-F̃)^b: verified by
  // constructing the collection model explicitly.
  const auto m = shared_model();
  const int b = 4;
  const MultipleSubmission multi(m, b);

  // Wrap the collection CDF as a latency model and discretize it.
  class CollectionModel final : public model::LatencyModel {
   public:
    CollectionModel(const model::DiscretizedLatencyModel& base, int b)
        : base_(base), b_(b) {}
    double ftilde(double t) const override {
      return 1.0 - std::pow(1.0 - base_.ftilde(t), b_);
    }
    double density(double t) const override {
      return b_ * std::pow(1.0 - base_.ftilde(t), b_ - 1) *
             base_.density(t);
    }
    double outlier_ratio() const override {
      return 1.0 - ftilde(base_.horizon());
    }
    double horizon() const override { return base_.horizon(); }
    double sample(stats::Rng& rng) const override {
      double best = model::kNeverStarts;
      for (int i = 0; i < b_; ++i) best = std::min(best, base_.sample(rng));
      return best;
    }
    std::string name() const override { return "collection"; }
    std::unique_ptr<LatencyModel> clone() const override {
      return std::make_unique<CollectionModel>(base_, b_);
    }

   private:
    const model::DiscretizedLatencyModel& base_;
    int b_;
  };

  const CollectionModel collection(m, b);
  const auto collection_disc = testutil::discretize(collection, 1.0);
  const SingleResubmission as_single(collection_disc);
  for (double t : {300.0, 800.0, 2000.0}) {
    EXPECT_NEAR(multi.expectation(t), as_single.expectation(t),
                0.002 * multi.expectation(t));
  }
}

TEST(MultipleSubmission, ExpectedSubmissionsIsBOverSuccess) {
  const auto m = shared_model();
  const MultipleSubmission multi(m, 3);
  const double t_inf = 500.0;
  const double q = std::pow(1.0 - m.ftilde(t_inf), 3.0);
  EXPECT_NEAR(multi.expected_submissions(t_inf), 3.0 / (1.0 - q), 1e-9);
}

TEST(MultipleSubmission, RejectsInvalidB) {
  const auto m = shared_model();
  EXPECT_THROW(MultipleSubmission(m, 0), std::invalid_argument);
  EXPECT_THROW(MultipleSubmission(m, -2), std::invalid_argument);
}

TEST(MultipleSubmission, OptimizeRespectsBounds) {
  const auto m = shared_model();
  const MultipleSubmission multi(m, 2);
  const auto opt = multi.optimize(300.0, 1200.0);
  EXPECT_GE(opt.t_inf, 300.0 - 1e-9);
  EXPECT_LE(opt.t_inf, 1200.0 + 1e-9);
  EXPECT_THROW((void)multi.optimize(500.0, 100.0), std::invalid_argument);
}

// Property sweep across (b, t_inf): sanity invariants of eq. 3/4.
class MultiSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MultiSweep, MomentsAreFiniteAndOrdered) {
  const auto [b, t_inf] = GetParam();
  const auto m = shared_model();
  const MultipleSubmission multi(m, b);
  const double ej = multi.expectation(t_inf);
  ASSERT_TRUE(std::isfinite(ej));
  EXPECT_GT(ej, 0.0);
  const double e2 = multi.second_moment(t_inf);
  EXPECT_GE(e2, ej * ej - 1e-6);  // variance non-negative
  // E_J can never undercut the floor of the latency distribution (60 s).
  EXPECT_GE(ej, 59.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12, 20),
                       ::testing::Values(150.0, 400.0, 900.0, 2500.0)));

}  // namespace
}  // namespace gridsub::core
