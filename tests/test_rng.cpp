#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace gridsub::stats {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01StaysInOpenInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.003);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformIntIsUnbiasedOverSmallRange) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  const int n = 140000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 600.0);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
    sum3 += z * z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.01);
  EXPECT_NEAR(sum3 / n, 0.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(29);
  Rng b = a.split();
  // The split stream should not replay the parent's outputs.
  std::set<std::uint64_t> parent;
  Rng a2(29);
  for (int i = 0; i < 64; ++i) parent.insert(a2.next_u64());
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.count(b.next_u64())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

}  // namespace
}  // namespace gridsub::stats
