// The tools' command-line parser: value options, flags, defaults, and the
// fail-fast behaviour on unknown options (death tests).

#include "cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace gridsub::tools {
namespace {

Cli make_cli() {
  return Cli("tool", "test tool",
             {{"--in", "input"}, {"--count", "n"}, {"--verbose", "flag"}},
             {"--verbose"});
}

TEST(Cli, ParsesValueOptions) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool"), const_cast<char*>("--in"),
                  const_cast<char*>("file.csv")};
  cli.parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(cli.get("--in").has_value());
  EXPECT_EQ(*cli.get("--in"), "file.csv");
  EXPECT_FALSE(cli.get("--count").has_value());
}

TEST(Cli, ParsesFlagsWithoutConsumingValues) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool"), const_cast<char*>("--verbose"),
                  const_cast<char*>("--in"), const_cast<char*>("x")};
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(cli.flag("--verbose"));
  EXPECT_EQ(*cli.get("--in"), "x");
}

TEST(Cli, DefaultsApply) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool")};
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_or("--in", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(cli.number_or("--count", 7.5), 7.5);
  EXPECT_FALSE(cli.flag("--verbose"));
}

TEST(Cli, ParsesNumbers) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool"), const_cast<char*>("--count"),
                  const_cast<char*>("42.5")};
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(cli.number_or("--count", 0.0), 42.5);
}

TEST(CliDeathTest, UnknownOptionExits) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool"), const_cast<char*>("--bogus"),
                  const_cast<char*>("x")};
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "unknown option");
}

TEST(CliDeathTest, MissingValueExits) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool"), const_cast<char*>("--in")};
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "needs a value");
}

TEST(CliDeathTest, BadNumberExits) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool"), const_cast<char*>("--count"),
                  const_cast<char*>("not-a-number")};
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EXIT((void)cli.number_or("--count", 0.0),
              ::testing::ExitedWithCode(2), "expects a number");
}

TEST(CliDeathTest, HelpExitsZero) {
  auto cli = make_cli();
  std::array argv{const_cast<char*>("tool"), const_cast<char*>("--help")};
  // Usage goes to stdout; the death-test matcher reads stderr, so only
  // the exit code is asserted here.
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace gridsub::tools
