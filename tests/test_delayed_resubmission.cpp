// Delayed-resubmission strategy (paper §6).

#include "core/delayed_resubmission.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/single_resubmission.hpp"
#include "test_util.hpp"

namespace gridsub::core {
namespace {

model::DiscretizedLatencyModel shared_model() {
  static const auto m =
      testutil::discretize(testutil::make_heavy_model(0.05, 4000.0), 1.0);
  return m;
}

TEST(DelayedResubmission, FeasibilityTriangle) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  EXPECT_TRUE(d.feasible(300.0, 450.0));
  EXPECT_TRUE(d.feasible(300.0, 600.0));   // t_inf == 2*t0 boundary
  EXPECT_FALSE(d.feasible(300.0, 601.0));  // beyond two copies
  EXPECT_FALSE(d.feasible(300.0, 300.0));  // t_inf must exceed t0
  EXPECT_FALSE(d.feasible(0.0, 100.0));
  EXPECT_FALSE(d.feasible(3000.0, 4500.0));  // t_inf beyond horizon
}

TEST(DelayedResubmission, InfeasibleEvaluatesToInfinity) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  EXPECT_TRUE(std::isinf(d.expectation(300.0, 700.0)));
  EXPECT_TRUE(std::isinf(d.expectation(-1.0, 100.0)));
}

TEST(DelayedResubmission, DegeneratesToSingleResubmissionAtT0EqualTinf) {
  // As t0 -> t_inf the copy is submitted exactly when the original is
  // canceled: plain single resubmission.
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const SingleResubmission s(m);
  const double t_inf = 800.0;
  EXPECT_NEAR(d.expectation(t_inf - 1e-3, t_inf), s.expectation(t_inf),
              0.5);
}

TEST(DelayedResubmission, EarlierCopyNeverHurts) {
  // For fixed t_inf, adding the staggered copy earlier (smaller t0) can
  // only reduce E_J: the copy is an extra independent chance.
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double t_inf = 800.0;
  double prev = 1e300;
  for (double t0 : {799.0, 700.0, 600.0, 500.0, 400.0}) {
    const double ej = d.expectation(t0, t_inf);
    EXPECT_LE(ej, prev + 1e-6) << "t0=" << t0;
    prev = ej;
  }
}

TEST(DelayedResubmission, BeatsSingleAtItsOptimum) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const SingleResubmission s(m);
  const auto dopt = d.optimize();
  const auto sopt = s.optimize();
  EXPECT_LT(dopt.metrics.expectation, sopt.metrics.expectation);
}

TEST(DelayedResubmission, SurvivalIsAValidTailFunction) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double t0 = 400.0, t_inf = 700.0;
  EXPECT_DOUBLE_EQ(d.survival(0.0, t0, t_inf), 1.0);
  double prev = 1.0;
  for (double t = 10.0; t < 6000.0; t += 10.0) {
    const double s = d.survival(t, t0, t_inf);
    EXPECT_LE(s, prev + 1e-12);
    EXPECT_GE(s, 0.0);
    prev = s;
  }
  EXPECT_LT(d.survival(50000.0, t0, t_inf), 1e-6);
}

TEST(DelayedResubmission, ExpectationIsIntegralOfSurvival) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double t0 = 350.0, t_inf = 650.0;
  double acc = 0.0;
  const double h = 0.5;
  for (double t = 0.5 * h; t < 60000.0; t += h) {
    const double s = d.survival(t, t0, t_inf);
    acc += s * h;
    if (s < 1e-12) break;
  }
  EXPECT_NEAR(d.expectation(t0, t_inf), acc, 1.0);
}

TEST(DelayedResubmission, SecondMomentMatchesSurvivalIntegral) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double t0 = 350.0, t_inf = 650.0;
  double acc = 0.0;
  const double h = 0.5;
  for (double t = 0.5 * h; t < 80000.0; t += h) {
    const double s = d.survival(t, t0, t_inf);
    acc += 2.0 * t * s * h;
    if (s < 1e-13 && t > 5000.0) break;
  }
  EXPECT_NEAR(d.second_moment(t0, t_inf), acc,
              0.005 * d.second_moment(t0, t_inf));
}

TEST(DelayedResubmission, PaperEq5AgreesWhenOverlapWindowIsEmptyOfMass) {
  // When F̃(t_inf - t0) == 0 the overlap terms of eq. 5 vanish and the
  // printed formula agrees with the survival form (see DESIGN.md; the
  // heavy model has a 60 s latency floor).
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double t0 = 600.0, t_inf = 650.0;  // overlap window = 50 s < floor
  ASSERT_DOUBLE_EQ(m.ftilde(t_inf - t0), 0.0);
  EXPECT_NEAR(d.expectation_paper_eq5(t0, t_inf), d.expectation(t0, t_inf),
              0.01 * d.expectation(t0, t_inf));
}

TEST(DelayedResubmission, PaperEq5DisagreesOnceOverlapHasMass) {
  // Documented deviation: with mass in the overlap window the printed
  // eq. 5 over-estimates E_J (Monte Carlo sides with the survival form;
  // see test_mc_validation.cpp).
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double t0 = 300.0, t_inf = 580.0;  // overlap window = 280 s
  ASSERT_GT(m.ftilde(t_inf - t0), 0.01);
  const double eq5 = d.expectation_paper_eq5(t0, t_inf);
  const double survival_form = d.expectation(t0, t_inf);
  EXPECT_GT(eq5, survival_form * 1.02);
}

TEST(DelayedResubmission, ParallelJobsFormulaMatchesPaperCases) {
  // n = 1, l < t_inf:         N = 2 - t0/l.
  EXPECT_NEAR(DelayedResubmission::parallel_jobs_at(432.0, 354.0, 496.0),
              2.0 - 354.0 / 432.0, 1e-12);
  // n = 1, l >= t_inf:        N = (t0 + 2(t_inf - t0) + (l - t_inf)) / l.
  EXPECT_NEAR(DelayedResubmission::parallel_jobs_at(444.0, 272.0, 435.0),
              (272.0 + 2.0 * (435.0 - 272.0) + (444.0 - 435.0)) / 444.0,
              1e-12);
  // n = 2 in I0:              N = (t0 + t_inf + 2(l - 2 t0)) / l.
  EXPECT_NEAR(DelayedResubmission::parallel_jobs_at(466.0, 224.0, 425.0),
              (224.0 + 425.0 + 2.0 * (466.0 - 448.0)) / 466.0, 1e-12);
}

TEST(DelayedResubmission, ParallelJobsBoundsAndAsymptote) {
  const double t0 = 300.0, t_inf = 500.0;
  // N(l <= t0) == 1 (only one copy ever existed).
  EXPECT_DOUBLE_EQ(DelayedResubmission::parallel_jobs_at(200.0, t0, t_inf),
                   1.0);
  // Asymptote: N -> t_inf / t0 as l grows.
  EXPECT_NEAR(DelayedResubmission::parallel_jobs_at(1e7, t0, t_inf),
              t_inf / t0, 1e-3);
  // Global bounds 1 <= N <= 2.
  for (double l : {10.0, 400.0, 650.0, 1000.0, 5000.0}) {
    const double n = DelayedResubmission::parallel_jobs_at(l, t0, t_inf);
    EXPECT_GE(n, 1.0 - 1e-12);
    EXPECT_LE(n, 2.0);
  }
}

TEST(DelayedResubmission, ExpectedSubmissionsAtLeastOne) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double subs = d.expected_submissions(400.0, 700.0);
  EXPECT_GE(subs, 1.0);
  // With a small t0, more copies are submitted on average.
  EXPECT_GT(d.expected_submissions(150.0, 290.0), subs * 0.9);
}

TEST(DelayedResubmission, OptimizeStaysFeasible) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const auto opt = d.optimize();
  EXPECT_TRUE(d.feasible(opt.t0, opt.t_inf));
  EXPECT_TRUE(std::isfinite(opt.metrics.expectation));
  EXPECT_GE(opt.n_parallel, 1.0 - 1e-9);
  EXPECT_LE(opt.n_parallel, 2.0);
}

TEST(DelayedResubmission, RatioConstrainedOptimumIsNoBetterThanGlobal) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const auto global = d.optimize();
  for (double ratio : {1.1, 1.3, 1.5, 1.8}) {
    const auto r = d.optimize_with_ratio(ratio);
    EXPECT_GE(r.metrics.expectation,
              global.metrics.expectation - 1.0)
        << "ratio=" << ratio;
    EXPECT_NEAR(r.t_inf / r.t0, ratio, 1e-6);
  }
}

TEST(DelayedResubmission, OptimizeWithRatioRejectsBadRatio) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  EXPECT_THROW((void)d.optimize_with_ratio(1.0), std::invalid_argument);
  EXPECT_THROW((void)d.optimize_with_ratio(2.5), std::invalid_argument);
}

TEST(DelayedResubmission, ExpectedParallelJobsBetween1AndRatio) {
  const auto m = shared_model();
  const DelayedResubmission d(m);
  const double t0 = 300.0, t_inf = 540.0;
  const double n = d.expected_parallel_jobs(t0, t_inf);
  EXPECT_GE(n, 1.0 - 1e-9);
  EXPECT_LE(n, t_inf / t0 + 1e-9);
}

class DelayedSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DelayedSweep, InvariantsAcrossTheFeasibleTriangle) {
  const auto [t0, ratio] = GetParam();
  const double t_inf = ratio * t0;
  const auto m = shared_model();
  const DelayedResubmission d(m);
  ASSERT_TRUE(d.feasible(t0, t_inf));
  const double ej = d.expectation(t0, t_inf);
  ASSERT_TRUE(std::isfinite(ej));
  EXPECT_GE(ej, 59.0);  // cannot beat the latency floor
  const double e2 = d.second_moment(t0, t_inf);
  EXPECT_GE(e2, ej * ej - 1e-6);
  // The delayed strategy at (t0, t_inf) is at least as good as single
  // resubmission at t_inf (the copy only adds chances).
  const SingleResubmission s(m);
  EXPECT_LE(ej, s.expectation(t_inf) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DelayedSweep,
    ::testing::Combine(::testing::Values(150.0, 300.0, 500.0, 900.0),
                       ::testing::Values(1.1, 1.4, 1.7, 2.0)));

}  // namespace
}  // namespace gridsub::core
