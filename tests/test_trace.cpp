#include "traces/trace.hpp"

#include <gtest/gtest.h>

namespace gridsub::traces {
namespace {

TEST(Trace, RecordsAndCounts) {
  Trace t("test", 10000.0);
  t.add_completed(0.0, 120.0);
  t.add_completed(10.0, 480.0);
  t.add_outlier(20.0);
  t.add_fault(30.0);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.count(ProbeStatus::kCompleted), 2u);
  EXPECT_EQ(t.count(ProbeStatus::kOutlier), 1u);
  EXPECT_EQ(t.count(ProbeStatus::kFault), 1u);
  EXPECT_EQ(t.completed_latencies(), (std::vector<double>{120.0, 480.0}));
}

TEST(Trace, StatsMatchTable1Definitions) {
  Trace t("test", 10000.0);
  t.add_completed(0.0, 100.0);
  t.add_completed(0.0, 300.0);
  t.add_outlier(0.0);
  const auto s = t.stats();
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_NEAR(s.outlier_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean_completed, 200.0);
  // Censored mean: (100 + 300 + 10000) / 3.
  EXPECT_NEAR(s.censored_mean, 10400.0 / 3.0, 1e-9);
}

TEST(Trace, CensoredMeanIsLowerBound) {
  Trace t("test", 10000.0);
  t.add_completed(0.0, 500.0);
  t.add_outlier(0.0);
  const auto s = t.stats();
  EXPECT_GT(s.censored_mean, s.mean_completed);
  EXPECT_LE(s.censored_mean, 10000.0);
}

TEST(Trace, RejectsLatencyBeyondTimeout) {
  Trace t("test", 1000.0);
  EXPECT_THROW(t.add_completed(0.0, 1500.0), std::invalid_argument);
  EXPECT_THROW(t.add_completed(0.0, -1.0), std::invalid_argument);
}

TEST(Trace, AppendConcatenatesAndChecksTimeout) {
  Trace a("a", 10000.0);
  a.add_completed(0.0, 10.0);
  Trace b("b", 10000.0);
  b.add_completed(5.0, 20.0);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  Trace c("c", 5000.0);
  EXPECT_THROW(a.append(c), std::invalid_argument);
}

TEST(Trace, StatsRequireCompletedProbes) {
  Trace t("empty-ish", 10000.0);
  t.add_outlier(0.0);
  EXPECT_THROW(static_cast<void>(t.stats()), std::logic_error);
}

TEST(Trace, RejectsNonPositiveTimeout) {
  EXPECT_THROW(Trace("bad", 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace gridsub::traces
