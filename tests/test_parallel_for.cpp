#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gridsub::par {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoOp) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  parallel_for(5, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::int64_t i) {
                              if (i == 37) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(ParallelForBlocked, BlocksCoverRangeWithoutOverlap) {
  std::vector<std::atomic<int>> hits(512);
  parallel_for_blocked(0, 512, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_LT(lo, hi);
    for (std::int64_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelReduce, SumsCorrectly) {
  const auto total = parallel_reduce<long long>(
      1, 10001, 0LL, [](std::int64_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(total, 50005000LL);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const auto v = parallel_reduce<int>(
      3, 3, -7, [](std::int64_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, -7);
}

TEST(ParallelReduce, DeterministicAcrossPoolSizes) {
  // Floating-point fold order is fixed (block order), so different pools
  // give bit-identical results.
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto run = [](ThreadPool* pool) {
    return parallel_reduce<double>(
        0, 100000, 0.0,
        [](std::int64_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; }, pool);
  };
  EXPECT_DOUBLE_EQ(run(&pool1), run(&pool8));
}

TEST(ParallelFor, WorksWithExplicitPool) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  parallel_for(0, 1000, [&](std::int64_t i) { sum += i; }, &pool);
  EXPECT_EQ(sum.load(), 499500);
}

}  // namespace
}  // namespace gridsub::par
