#include "traces/scenarios.hpp"

#include <gtest/gtest.h>

#include "traces/generator.hpp"

namespace gridsub::traces {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig c;
  c.base_rate = 0.05;
  c.duration = 2.0 * 86400.0;  // two days keeps the suite fast
  c.seed = 42;
  return c;
}

TEST(Scenarios, NamesAndUnknownName) {
  const auto names = replay_scenario_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names.front(), "stationary-week");
  EXPECT_THROW(make_scenario("no-such-week", small_config()),
               std::out_of_range);
}

TEST(Scenarios, DeterministicInSeed) {
  const auto config = small_config();
  const Workload a = make_scenario("diurnal-week", config);
  const Workload b = make_scenario("diurnal-week", config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].arrival, b.jobs()[i].arrival);
    EXPECT_DOUBLE_EQ(a.jobs()[i].runtime, b.jobs()[i].runtime);
  }
  auto other = config;
  other.seed = 43;
  const Workload c = make_scenario("diurnal-week", other);
  EXPECT_NE(a.size(), c.size());  // different draw (overwhelmingly likely)
}

TEST(Scenarios, NormalizedToSameAverageRate) {
  // All shapes distribute the same expected job mass over the horizon.
  const auto config = small_config();
  const double expected =
      config.base_rate * config.duration;  // = 8640 jobs
  for (const auto& name : replay_scenario_names()) {
    const Workload w = make_scenario(name, config);
    EXPECT_NEAR(static_cast<double>(w.size()), expected, 0.08 * expected)
        << name;
  }
}

TEST(Scenarios, NonStationaryShapesAreBurstier) {
  const auto config = small_config();
  const double flat =
      make_scenario("stationary-week", config).stats().burstiness;
  const double burst = make_scenario("burst-week", config).stats().burstiness;
  const double diurnal =
      make_scenario("diurnal-week", config).stats().burstiness;
  EXPECT_LT(flat, 1.6);
  EXPECT_GT(burst, flat + 0.5);
  EXPECT_GT(diurnal, flat + 0.2);
}

TEST(Scenarios, OutageWeekHasDeadWindow) {
  ScenarioConfig config;
  config.base_rate = 0.05;
  config.duration = 5.0 * 86400.0;  // cover the day-3 outage + flush
  config.seed = 7;
  const Workload w = make_scenario("outage-week", config);
  const double outage_start = 3.0 * 86400.0;
  const double flush_start = outage_start + 12.0 * 3600.0;
  EXPECT_TRUE(w.window(outage_start, flush_start).empty());
  // The flush carries roughly 3x the normal rate.
  const auto flush = w.window(flush_start, 4.0 * 86400.0);
  const auto normal = w.window(0.0, 12.0 * 3600.0);
  EXPECT_GT(static_cast<double>(flush.size()),
            1.5 * static_cast<double>(normal.size()));
}

TEST(Scenarios, ShortDurationBelowSamplingStepWorks) {
  // The normalization grid caps its step at the duration; a 20 s horizon
  // used to take zero samples and throw a bogus "degenerate shape" error.
  ScenarioConfig config;
  config.base_rate = 1.0;
  config.duration = 20.0;
  config.seed = 3;
  const Workload w = make_scenario("stationary-week", config);
  EXPECT_LE(w.duration(), 20.0);
}

TEST(Scenarios, RejectsBadConfig) {
  ScenarioConfig config;
  config.base_rate = 0.0;
  EXPECT_THROW(make_scenario("stationary-week", config),
               std::invalid_argument);
  config.base_rate = 0.1;
  config.duration = -1.0;
  EXPECT_THROW(make_scenario("stationary-week", config),
               std::invalid_argument);
}

TEST(GenerateWorkload, ValidatesAndHonorsRateFn) {
  WorkloadGenConfig config;
  config.duration = 10000.0;
  config.peak_rate = 0.5;
  config.seed = 11;
  EXPECT_THROW(generate_workload(nullptr, config), std::invalid_argument);
  auto bad = config;
  bad.peak_rate = 0.0;
  EXPECT_THROW(generate_workload([](double) { return 0.1; }, bad),
               std::invalid_argument);
  // Zero rate produces an empty workload; full envelope rate fills it.
  const Workload none =
      generate_workload([](double) { return 0.0; }, config);
  EXPECT_TRUE(none.empty());
  const Workload full =
      generate_workload([](double) { return 0.5; }, config);
  EXPECT_NEAR(static_cast<double>(full.size()), 5000.0, 500.0);
}

}  // namespace
}  // namespace gridsub::traces
