#include "numerics/rootfind.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridsub::numerics {
namespace {

TEST(Bisection, FindsSimpleRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto res = bisection(f, 0.0, 2.0, 1e-12);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-9);
}

TEST(Bisection, AcceptsRootAtBracketEdge) {
  const auto f = [](double x) { return x - 1.0; };
  const auto res = bisection(f, 1.0, 5.0);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.x, 1.0);
}

TEST(Bisection, RejectsNonBracketingInterval) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(bisection(f, -1.0, 1.0), std::invalid_argument);
}

TEST(BrentRoot, ConvergesFasterThanBisection) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto brent = brent_root(f, 0.0, 1.0, 1e-14);
  const auto bisect = bisection(f, 0.0, 1.0, 1e-14);
  EXPECT_NEAR(brent.x, 0.7390851332151607, 1e-10);
  EXPECT_LT(brent.evaluations, bisect.evaluations);
}

TEST(BrentRoot, HandlesSteepFunctions) {
  const auto f = [](double x) { return std::expm1(50.0 * (x - 0.2)); };
  const auto res = brent_root(f, -1.0, 1.0, 1e-14);
  EXPECT_NEAR(res.x, 0.2, 1e-8);
}

TEST(BracketAndSolve, ExpandsToFindTheRoot) {
  const auto f = [](double x) { return x - 1000.0; };
  const auto res = bracket_and_solve(f, 0.0, 1.0, 60, 1e-10);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, 1000.0, 1e-6);
}

TEST(BracketAndSolve, ReportsFailureWhenNoRootExists) {
  const auto f = [](double x) { return x * x + 1.0; };
  const auto res = bracket_and_solve(f, -1.0, 1.0, 8, 1e-10);
  EXPECT_FALSE(res.converged);
}

class RootSweep : public ::testing::TestWithParam<double> {};

TEST_P(RootSweep, PowerFunctions) {
  const double target = GetParam();
  // Solve x^3 = target.
  const auto f = [target](double x) { return x * x * x - target; };
  const auto res = bracket_and_solve(f, -2.0, 2.0, 60, 1e-13);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x, std::cbrt(target), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Targets, RootSweep,
                         ::testing::Values(-512.0, -1.0, 0.001, 1.0, 27.0,
                                           1e6));

}  // namespace
}  // namespace gridsub::numerics
