// Adaptive client — the paper's conclusion asks for strategies "integrated
// in the client side of the middleware to release the users of this
// burden". This example is that client, end to end, with no real trace in
// sight: it measures the (simulated) grid with probes, feeds them to the
// online planner as they complete, watches the drift detector, and finally
// executes the recommended strategy on the same live grid.

#include <cstdio>

#include "online/online_planner.hpp"
#include "sim/grid.hpp"
#include "sim/probe_client.hpp"
#include "sim/strategy_client.hpp"

int main() {
  using namespace gridsub;

  // A grid the client knows nothing about.
  sim::GridConfig config = sim::GridConfig::egee_like();
  config.background.arrival_rate = 0.3;
  sim::GridSimulation grid(config);
  grid.warm_up(30000.0);

  // Phase 1: probe campaign (paper §3.2 methodology, constant in-flight).
  sim::ProbeCampaignConfig pc;
  pc.n_probes = 600;
  pc.concurrent = 10;
  pc.timeout = 8000.0;
  sim::ProbeClient probe(grid, pc, "adaptive-campaign");
  probe.start();
  grid.simulator().run_until(grid.simulator().now() + 1.5e7);
  const auto stats = probe.trace().stats();
  std::printf("probe campaign: %zu probes, mean %.0f s, sd %.0f s, "
              "outliers %.1f%%\n",
              stats.total, stats.mean_completed, stats.stddev_completed,
              100.0 * stats.outlier_ratio);

  // Phase 2: stream the observations into the online planner.
  online::OnlinePlannerConfig oc;
  oc.window = 500;
  oc.min_observations = 150;
  oc.refit_interval = 50;
  oc.timeout = pc.timeout;
  oc.planner.objective = core::PlannerOptions::Objective::kMinCost;
  online::OnlinePlanner planner(oc);
  for (const auto& r : probe.trace().records()) {
    if (r.status == traces::ProbeStatus::kCompleted) {
      planner.observe_completed(r.latency);
    } else {
      planner.observe_outlier();
    }
  }
  if (!planner.ready()) {
    std::printf("not enough probes to plan — aborting\n");
    return 1;
  }
  const auto& rec = planner.current();
  std::printf("\nonline planner: %zu refits, drift KS = %.3f (%s)\n",
              planner.refits(), planner.drift_statistic(),
              planner.drifted() ? "DRIFTING - distrust parameters"
                                : "stationary");
  std::printf("recommendation: %s  (t0 = %.0f s, t_inf = %.0f s, b = %d)\n",
              std::string(core::to_string(rec.choice.kind)).c_str(),
              rec.choice.t0, rec.choice.t_inf, rec.choice.b);
  std::printf("predicted E_J = %.0f s, dcost = %.3f\n", rec.choice.expectation,
              rec.choice.delta_cost);
  std::printf("rationale: %s\n", rec.rationale.c_str());

  // Phase 3: run the recommendation on the same grid, live.
  sim::StrategySpec spec;
  spec.kind = rec.choice.kind;
  spec.t_inf = rec.choice.t_inf;
  spec.t0 = rec.choice.t0;
  spec.b = rec.choice.b;
  sim::StrategyClient client(grid, spec, 120);
  client.start();
  grid.simulator().run_until(grid.simulator().now() + 3e7);
  if (!client.done()) {
    std::printf("\nstrategy client did not finish within the horizon\n");
    return 1;
  }
  std::printf("\nexecuted on the live grid: mean J = %.0f s over %zu tasks "
              "(%.2f submissions/task)\n",
              client.mean_latency(), client.outcomes().size(),
              client.mean_submissions());
  std::printf("predicted-vs-measured ratio: %.2f\n",
              client.mean_latency() / rec.choice.expectation);
  std::printf(
      "\nreading: the model was estimated from probes on the very "
      "infrastructure the client then uses, so the prediction lands in the "
      "right regime; the residual gap is the client's own extra load plus "
      "non-stationarity — exactly why the planner keeps watching drift.\n");
  return 0;
}
