// Medical-imaging workflow on the grid — the application domain that
// motivated the paper (the authors run biomed VO workloads such as
// image-analysis pipelines).
//
// Scenario: a study of 400 independent image-analysis jobs, each with a
// known 90 s compute kernel, submitted through the biomed-like week
// 2007-51. The application-level metric is the *makespan contribution of
// latency*: with limited client-side concurrency, tail latencies dominate
// wall-clock. We compare the three strategies end-to-end with the Monte
// Carlo engine and report per-strategy latency, spread, and grid load.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cost.hpp"
#include "mc/mc_engine.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  constexpr int kJobs = 400;
  constexpr double kKernelSeconds = 90.0;

  const auto trace = traces::make_trace_by_name("2007-51");
  const auto model = model::DiscretizedLatencyModel::from_trace(trace, 1.0);
  const core::CostModel cost(model);

  std::printf("medical workflow: %d analysis jobs of %.0f s each on the "
              "%s latency regime\n\n",
              kJobs, kKernelSeconds, trace.name().c_str());

  struct Plan {
    const char* label;
    core::CostEvaluation eval;
  };
  std::vector<Plan> plans;
  plans.push_back({"single resubmission (baseline)",
                   cost.evaluate_single()});
  plans.push_back({"multiple submission b=3", cost.evaluate_multiple(3)});
  const auto d_latency = cost.delayed().optimize();
  plans.push_back({"delayed (latency-optimal)",
                   cost.evaluate_delayed(d_latency.t0, d_latency.t_inf)});
  plans.push_back({"delayed (cost-optimal)", cost.optimize_delayed_cost()});

  std::printf("%-34s %10s %10s %12s %10s %10s\n", "strategy", "E_J(s)",
              "job(s)", "study CPU-h", "N_par", "d_cost");
  mc::McOptions mo;
  mo.replications = 100000;
  for (const auto& plan : plans) {
    // Monte Carlo the actual client protocol for per-job latency.
    mc::McResult mc;
    switch (plan.eval.kind) {
      case core::StrategyKind::kSingleResubmission:
        mc = mc::simulate_single(model, plan.eval.t_inf, mo);
        break;
      case core::StrategyKind::kMultipleSubmission:
        mc = mc::simulate_multiple(model, plan.eval.b, plan.eval.t_inf, mo);
        break;
      case core::StrategyKind::kDelayedResubmission:
        mc = mc::simulate_delayed(model, plan.eval.t0, plan.eval.t_inf, mo);
        break;
    }
    const double per_job = mc.mean_latency + kKernelSeconds;
    // Grid CPU consumed by the study: latency occupancy + kernels.
    const double cpu_hours =
        kJobs *
        (mc.aggregate_parallel * mc.mean_latency + kKernelSeconds) / 3600.0;
    std::printf("%-34s %10.0f %10.0f %12.1f %10.2f %10.2f\n", plan.label,
                mc.mean_latency, per_job, cpu_hours,
                mc.aggregate_parallel, plan.eval.delta_cost);
  }

  std::printf(
      "\nreading: multiple submission minimizes per-job latency but "
      "multiplies the study's grid occupancy; the cost-optimal delayed "
      "configuration keeps latency below the baseline at near-baseline "
      "occupancy. Note the MC N_par column: the *measured* job-seconds "
      "sit a little above what the paper's d_cost accounting promises — "
      "the Jensen bias quantified in bench_ablation_cost_accounting.\n");
  return 0;
}
