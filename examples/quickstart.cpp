// Quickstart: the five-minute tour of gridsub.
//
//  1. Obtain a probe trace (here: the synthetic 2006-IX EGEE-like week).
//  2. Build the defective latency CDF F̃_R and discretize it.
//  3. Ask each strategy model for its optimum.
//  4. Let the planner pick a strategy under an objective.
//  5. Sanity-check the chosen configuration with Monte Carlo.
//  6. Put a finite-sample confidence band on the promise.

#include <cstdio>

#include "core/planner.hpp"
#include "core/uncertainty.hpp"
#include "mc/mc_engine.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;

  // 1-2. Trace -> empirical F̃ on a 1 s grid.
  const traces::Trace trace = traces::make_trace_by_name("2006-IX");
  const auto stats = trace.stats();
  std::printf("trace %s: %zu probes, outlier ratio %.1f%%, mean latency "
              "%.0f s (sd %.0f s)\n",
              trace.name().c_str(), trace.size(),
              100.0 * stats.outlier_ratio, stats.mean_completed,
              stats.stddev_completed);
  const auto model = model::DiscretizedLatencyModel::from_trace(trace, 1.0);

  // 3. Strategy optima.
  const core::SingleResubmission single(model);
  const auto s_opt = single.optimize();
  std::printf("\nsingle resubmission: cancel & resubmit every %.0f s -> "
              "E_J = %.0f s (sigma %.0f s)\n",
              s_opt.t_inf, s_opt.metrics.expectation,
              s_opt.metrics.std_deviation);

  const core::MultipleSubmission multi(model, 3);
  const auto m_opt = multi.optimize();
  std::printf("multiple submission (b=3): timeout %.0f s -> E_J = %.0f s "
              "(3 copies in flight)\n",
              m_opt.t_inf, m_opt.metrics.expectation);

  const core::DelayedResubmission delayed(model);
  const auto d_opt = delayed.optimize();
  std::printf("delayed resubmission: copy at t0 = %.0f s, cancel at "
              "t_inf = %.0f s -> E_J = %.0f s with only %.2f copies on "
              "average\n",
              d_opt.t0, d_opt.t_inf, d_opt.metrics.expectation,
              d_opt.n_parallel);

  // 4. Planner recommendation under the infrastructure-friendly objective.
  const core::StrategyPlanner planner(model);
  const auto rec = planner.recommend();
  std::printf("\nplanner (min-cost objective): %s\n",
              rec.rationale.c_str());

  // 5. Validate the choice by simulating the client protocol.
  mc::McOptions mo;
  mo.replications = 200000;
  if (rec.choice.kind == core::StrategyKind::kDelayedResubmission) {
    const auto mc = mc::simulate_delayed(model, rec.choice.t0,
                                         rec.choice.t_inf, mo);
    std::printf("monte-carlo check: E_J = %.0f s (model said %.0f s), "
                "%.2f submissions per task\n",
                mc.mean_latency, rec.choice.expectation,
                mc.mean_submissions);

    // 6. How much of that is estimation noise? DKW band from the campaign
    //    size behind the model.
    const core::UncertaintyAnalysis ua(model, trace.size());
    const auto band = ua.delayed(rec.choice.t0, rec.choice.t_inf);
    std::printf("95%% confidence from %zu probes: E_J in [%.0f, %.0f] s\n",
                trace.size(), band.lower, band.upper);
  }
  return 0;
}
