// Practical implementation (paper §7.2): a client cannot optimize on the
// week it is about to run — it estimates (t0, t∞) from *last week's*
// probes and applies them this week. This example walks the 2007-51 ..
// 2008-03 sequence: tune on week w-1, deploy on week w, and report the
// Δcost penalty vs the (unknowable) same-week optimum.

#include <cstdio>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  const std::vector<std::string> weeks = {"2007-51", "2007-52", "2007-53",
                                          "2008-01", "2008-02", "2008-03"};

  std::printf("week-ahead tuning of the delayed strategy (paper §7.2)\n\n");
  std::printf("%-10s %-16s %-16s %10s %10s %8s\n", "deploy on",
              "params from", "(t0, t_inf)", "d_cost", "own opt",
              "penalty");

  double worst_penalty = 0.0;
  for (std::size_t w = 1; w < weeks.size(); ++w) {
    // Tune on last week.
    const auto prev_model = model::DiscretizedLatencyModel::from_trace(
        traces::make_trace_by_name(weeks[w - 1]), 1.0);
    const core::StrategyPlanner prev_planner(prev_model);
    const auto tuned = prev_planner.cost_model().optimize_delayed_cost();

    // Deploy on this week.
    const auto cur_model = model::DiscretizedLatencyModel::from_trace(
        traces::make_trace_by_name(weeks[w]), 1.0);
    const core::StrategyPlanner cur_planner(cur_model);
    const auto deployed =
        cur_planner.evaluate_delayed_params(tuned.t0, tuned.t_inf);
    const auto own = cur_planner.cost_model().optimize_delayed_cost();

    const double penalty =
        (deployed.delta_cost - own.delta_cost) / own.delta_cost;
    worst_penalty = std::max(worst_penalty, penalty);
    char params[40];
    std::snprintf(params, sizeof(params), "(%.0f, %.0f)", tuned.t0,
                  tuned.t_inf);
    std::printf("%-10s %-16s %-16s %10.3f %10.3f %7.1f%%\n",
                weeks[w].c_str(), weeks[w - 1].c_str(), params,
                deployed.delta_cost, own.delta_cost, 100.0 * penalty);
  }
  std::printf("\nworst week-ahead penalty: %.1f%% (paper reports <= 6%% "
              "on the EGEE weeks; both support deploying last week's "
              "parameters).\n",
              100.0 * worst_penalty);
  return 0;
}
