// Virtual-screening campaign planning — the second application domain the
// paper's community ran on the biomed VO (docking millions of ligands,
// cf. the WISDOM initiative cited as [9]).
//
// Scenario: a chemist needs 10,000 independent docking tasks of ~30 min
// each, split into batches, and wants a wall-clock estimate and a strategy
// choice *before* burning CPU-hours. We build the total-latency law of
// each candidate strategy on last week's probe model and compare expected
// makespan, tail risk (p99) and billed grid time at several batch sizes.

#include <cstdio>

#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "core/total_latency.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"
#include "workflow/makespan.hpp"

int main() {
  using namespace gridsub;
  constexpr std::size_t kTasks = 10000;
  constexpr double kDockSeconds = 1800.0;

  const auto trace = traces::make_trace_by_name("2007/08");
  const auto model = model::DiscretizedLatencyModel::from_trace(trace, 1.0);

  std::printf("virtual screening: %zu docking tasks x %.0f s, planned on "
              "the %s probe model\n\n",
              kTasks, kDockSeconds, trace.name().c_str());

  // Candidate strategies at their per-job latency optima.
  const auto single_opt = core::SingleResubmission(model).optimize();
  const auto multi_opt = core::MultipleSubmission(model, 4).optimize();
  const auto delayed_opt = core::DelayedResubmission(model).optimize();

  struct Candidate {
    const char* label;
    workflow::MakespanModel makespan;
  };
  const Candidate candidates[] = {
      {"single resubmission",
       workflow::MakespanModel(core::TotalLatencyDistribution::single(
           model, single_opt.t_inf))},
      {"multiple submission b=4",
       workflow::MakespanModel(core::TotalLatencyDistribution::multiple(
           model, 4, multi_opt.t_inf))},
      {"delayed resubmission",
       workflow::MakespanModel(core::TotalLatencyDistribution::delayed(
           model, delayed_opt.t0, delayed_opt.t_inf))},
  };

  for (const std::size_t batch : {500u, 2000u, 10000u}) {
    const std::size_t waves = kTasks / batch;
    std::printf("-- batch size %zu (%zu waves, barrier between waves)\n",
                batch, waves);
    std::printf("%-26s %14s %12s %12s %14s\n", "strategy",
                "campaign (h)", "wave p99 (h)", "latency %", "grid CPU-h");
    for (const auto& c : candidates) {
      const workflow::BagOfTasks wave{batch, kDockSeconds};
      const auto est = c.makespan.estimate(wave);
      const double campaign_hours =
          static_cast<double>(waves) * est.expectation / 3600.0;
      const double latency_share =
          100.0 * (est.expectation - kDockSeconds) / est.expectation;
      const double cpu_hours =
          static_cast<double>(waves) * est.job_seconds / 3600.0;
      std::printf("%-26s %14.1f %12.2f %11.1f%% %14.0f\n", c.label,
                  campaign_hours, est.p99 / 3600.0, latency_share,
                  cpu_hours);
    }
    std::printf("\n");
  }

  std::printf(
      "reading: larger batches amortize the per-wave latency tail, and the "
      "strategy choice moves the campaign by hours — multiple submission "
      "buys the shortest wall-clock at a higher CPU bill, delayed "
      "resubmission most of the win at near-baseline cost (paper §7).\n");
  return 0;
}
