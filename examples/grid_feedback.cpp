// Closing the loop on the discrete-event grid (and the paper's future
// work): measure the simulated infrastructure with a probe campaign,
// model it, tune a delayed strategy on the measurements, then run a fleet
// of clients using that strategy on the same grid and compare predicted
// vs experienced latency — including the perturbation the fleet itself
// causes.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/cost.hpp"
#include "model/discretized.hpp"
#include "sim/grid.hpp"
#include "sim/probe_client.hpp"
#include "sim/strategy_client.hpp"

int main() {
  using namespace gridsub;

  // Phase 1: probe the grid, as the paper's measurement campaigns do.
  sim::GridConfig config = sim::GridConfig::egee_like();
  config.background.arrival_rate = 0.25;
  sim::GridSimulation measured(config);
  measured.warm_up(30000.0);
  sim::ProbeCampaignConfig pc;
  pc.n_probes = 800;
  pc.concurrent = 10;
  sim::ProbeClient probe(measured, pc, "des-week");
  probe.start();
  measured.simulator().run_until(measured.simulator().now() + 1.5e7);
  const auto stats = probe.trace().stats();
  std::printf("probe campaign: %zu probes, mean latency %.0f s (sd %.0f), "
              "outliers %.1f%%\n",
              probe.trace().size(), stats.mean_completed,
              stats.stddev_completed, 100.0 * stats.outlier_ratio);

  // Phase 2: model + tune.
  const auto model =
      model::DiscretizedLatencyModel::from_trace(probe.trace(), 2.0);
  const core::CostModel cost(model);
  const auto tuned = cost.optimize_delayed_cost();
  std::printf("tuned delayed strategy: t0 = %.0f s, t_inf = %.0f s, "
              "predicted E_J = %.0f s, d_cost = %.2f\n\n",
              tuned.t0, tuned.t_inf, tuned.expectation, tuned.delta_cost);

  // Phase 3: a fleet adopts the tuned strategy on a fresh, identically
  // seeded grid; sweep the fleet size to expose the feedback effect.
  std::printf("%8s %14s %14s %12s %12s\n", "clients", "mean J (s)",
              "vs predicted", "subs/task", "canceled");
  for (int fleet : {1, 8, 32, 96}) {
    sim::GridSimulation grid(config);
    grid.warm_up(30000.0);
    const auto canceled_before = grid.metrics().jobs_canceled;
    std::vector<std::unique_ptr<sim::StrategyClient>> clients;
    sim::StrategySpec spec;
    spec.kind = core::StrategyKind::kDelayedResubmission;
    spec.t0 = tuned.t0;
    spec.t_inf = tuned.t_inf;
    for (int c = 0; c < fleet; ++c) {
      clients.push_back(
          std::make_unique<sim::StrategyClient>(grid, spec, 30));
    }
    for (auto& c : clients) c->start();
    grid.simulator().run_until(grid.simulator().now() + 6e7);

    double mean_j = 0.0, mean_subs = 0.0;
    std::size_t done = 0;
    for (const auto& c : clients) {
      for (const auto& o : c->outcomes()) {
        mean_j += o.total_latency;
        mean_subs += o.submissions;
        ++done;
      }
    }
    if (done == 0) continue;
    mean_j /= static_cast<double>(done);
    mean_subs /= static_cast<double>(done);
    std::printf("%8d %14.0f %+13.1f%% %12.2f %12llu\n", fleet, mean_j,
                100.0 * (mean_j - tuned.expectation) / tuned.expectation,
                mean_subs,
                static_cast<unsigned long long>(grid.metrics().jobs_canceled -
                                                canceled_before));
  }
  std::printf(
      "\nreading: the tuned strategy tracks its prediction for small "
      "fleets; as adoption grows the fleet's own submissions and "
      "cancellations shift the latency distribution it was tuned on — "
      "the feedback the paper flags as future work.\n");
  return 0;
}
