#!/usr/bin/env python3
"""Self-test for lint_determinism.py against tests/lint_fixtures/.

Runs with the stdlib only (`python3 scripts/test_lint_determinism.py`);
CI registers it as the `tooling`-labelled ctest entry
lint_determinism_selftest.  Each case pins down a piece of the linter's
contract: every rule fires on violations.cpp (at the right line),
reasoned allows silence exactly their line or file, broken allows are
themselves findings, and determinism-safe look-alikes stay quiet.
"""

import io
import os
import sys
import unittest
from contextlib import redirect_stdout, redirect_stderr

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_determinism  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def run_lint(*argv):
    out = io.StringIO()
    with redirect_stdout(out), redirect_stderr(out):
        code = lint_determinism.main(list(argv))
    return code, out.getvalue()


def fixture(name):
    return os.path.join(FIXTURES, name)


class ViolationsFixture(unittest.TestCase):
    def setUp(self):
        self.code, self.out = run_lint(fixture("violations.cpp"))

    def test_exits_nonzero(self):
        self.assertEqual(self.code, 1)

    def test_every_rule_fires_exactly_once(self):
        for rule in lint_determinism.RULES:
            self.assertEqual(
                self.out.count(f"[{rule}]"), 1,
                f"rule {rule} should fire exactly once:\n{self.out}")

    def test_findings_carry_file_and_line(self):
        self.assertIn("violations.cpp:14: [unordered-container]", self.out)
        self.assertIn("violations.cpp:38: [printf-float]", self.out)


class AllowedFixture(unittest.TestCase):
    def test_reasoned_allows_silence_findings(self):
        code, out = run_lint(fixture("allowed.cpp"))
        self.assertEqual(code, 0, out)
        self.assertIn("clean", out)


class BadAllowFixture(unittest.TestCase):
    def setUp(self):
        self.code, self.out = run_lint(fixture("bad_allow.cpp"))

    def test_exits_nonzero(self):
        self.assertEqual(self.code, 1)

    def test_unknown_rule_is_an_error(self):
        self.assertIn("[unknown-allow]", self.out)
        self.assertIn("made-up-rule", self.out)

    def test_missing_reason_is_an_error(self):
        self.assertIn("carries no reason", self.out)

    def test_malformed_directive_is_an_error(self):
        self.assertIn("malformed gridsub-lint directive", self.out)

    def test_unused_allows_are_errors(self):
        self.assertIn("allow(wall-clock) suppresses nothing", self.out)
        self.assertIn("allow-file(locale) suppresses nothing", self.out)


class CleanFixture(unittest.TestCase):
    def test_lookalikes_stay_quiet(self):
        code, out = run_lint(fixture("clean.cpp"))
        self.assertEqual(code, 0, out)


class DirectiveScope(unittest.TestCase):
    def test_line_allow_does_not_leak_past_next_line(self):
        src = fixture("allowed.cpp")
        with open(src, encoding="utf-8") as fh:
            text = fh.read()
        # The directive-above form covers only the immediately following
        # line; pushing the violation one line further must re-expose it.
        leaked = text.replace(
            "  // gridsub-lint: allow(printf-float) fixture: "
            "directive-above form\n  std::printf",
            "  // gridsub-lint: allow(printf-float) fixture: "
            "directive-above form\n  //\n  std::printf")
        self.assertNotEqual(leaked, text)
        import tempfile
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", delete=False) as tmp:
            tmp.write(leaked)
            path = tmp.name
        try:
            code, out = run_lint(path)
            self.assertEqual(code, 1)
            self.assertIn("[printf-float]", out)
            self.assertIn("suppresses nothing", out)
        finally:
            os.unlink(path)


class RealTree(unittest.TestCase):
    def test_default_scan_is_clean(self):
        code, out = run_lint()
        self.assertEqual(code, 0, f"default scan must stay clean:\n{out}")

    def test_simulation_core_is_covered(self):
        # The DES core, online layer, and serving layer feed every
        # trajectory and every published snapshot; they must stay inside
        # the default scan, not just the reporting modules.
        for module in ("src/sim", "src/online", "src/serve", "src/fault"):
            self.assertIn(module, lint_determinism.DEFAULT_DIRS)

    def test_list_rules_matches_table(self):
        code, out = run_lint("--list-rules")
        self.assertEqual(code, 0)
        self.assertEqual(sorted(out.split()),
                         sorted(lint_determinism.RULES))

    def test_missing_path_is_a_usage_error(self):
        code, _out = run_lint(os.path.join(FIXTURES, "no_such_file.cpp"))
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
