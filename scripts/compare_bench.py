#!/usr/bin/env python3
"""Diff two gridsub bench JSON files — micro or report format.

Two input shapes are recognised automatically:

* google-benchmark JSON (BENCH_perf_micro.json): benchmarks matched by
  name, times normalised to nanoseconds, speedup factor per row.
* gridsub-bench-v1 reports (scripts/run_benches.py output): benches
  matched by name, wall seconds AND peak RSS diffed side by side, so a
  memory regression in the streaming campaign pipeline blocks the same
  way a time regression does.

Use --format markdown to publish the table as a CI job summary.

Exit code is 0 unless a threshold is given: --fail-below X fails when any
benchmark's speedup falls below X (i.e. a regression worse than 1/X);
--fail-rss-above Y fails when any bench's peak RSS grew by more than a
factor of Y (report format only). By default the diff is informational —
bench noise on shared CI runners should not block merges.
"""

import argparse
import json
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_payload(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"compare_bench: cannot read {path}: {exc}")


def load(path):
    payload = load_payload(path)
    benches = {}
    for entry in payload.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue  # compare raw runs, not mean/median/stddev rows
        unit = UNIT_TO_NS.get(entry.get("time_unit", "ns"))
        if unit is None or "real_time" not in entry:
            continue
        benches[entry["name"]] = {
            "ns": entry["real_time"] * unit,
            "items_per_second": entry.get("items_per_second"),
        }
    return payload.get("context", {}), benches


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def is_report(payload):
    return payload.get("schema") == "gridsub-bench-v1"


def load_report(payload):
    """Extracts {name: {wall, rss_kb}} from a gridsub-bench-v1 report,
    skipping benches that errored (their numbers mean nothing)."""
    benches = {}
    for name, entry in payload.get("results", {}).items():
        if entry.get("error") or entry.get("exit_code") != 0:
            continue
        benches[name] = {
            "wall": entry.get("wall_seconds"),
            "rss_kb": entry.get("peak_rss_kb"),  # None on pre-RSS reports
        }
    return benches


def fmt_rss(kb):
    if kb is None:
        return "-"
    if kb >= 1024 * 1024:
        return f"{kb / (1024 * 1024):.2f} GiB"
    if kb >= 1024:
        return f"{kb / 1024:.1f} MiB"
    return f"{kb} KiB"


def compare_reports(base_payload, new_payload, md, fail_below,
                    fail_rss_above):
    base = load_report(base_payload)
    new = load_report(new_payload)
    names = [n for n in base if n in new]

    rows = []
    worst_speed = None
    worst_rss = None
    for name in names:
        b, n = base[name], new[name]
        speedup = (b["wall"] / n["wall"]
                   if b["wall"] and n["wall"] else None)
        rss_ratio = (n["rss_kb"] / b["rss_kb"]
                     if b["rss_kb"] and n["rss_kb"] else None)
        rows.append((name, b, n, speedup, rss_ratio))
        if speedup is not None and (worst_speed is None
                                    or speedup < worst_speed):
            worst_speed = speedup
        if rss_ratio is not None and (worst_rss is None
                                      or rss_ratio > worst_rss):
            worst_rss = rss_ratio

    if md:
        print("| bench | wall (base) | wall (cand) | speedup "
              "| RSS (base) | RSS (cand) | RSS ratio |")
        print("|---|---:|---:|---:|---:|---:|---:|")
    else:
        width = max((len(n) for n in names), default=12)
        print(f"{'bench':<{width}}  {'wall base':>10}  {'wall cand':>10}  "
              f"{'speedup':>8}  {'rss base':>10}  {'rss cand':>10}  "
              f"{'rss ratio':>9}")
    for name, b, n, speedup, rss_ratio in rows:
        speed_s = f"{speedup:.2f}x" if speedup is not None else "-"
        rss_s = f"{rss_ratio:.2f}x" if rss_ratio is not None else "-"
        mark = ""
        if rss_ratio is not None and rss_ratio >= 1.5:
            mark = " ⚠️ RSS" if md else " (RSS GREW)"
        elif speedup is not None and speedup <= 0.8:
            mark = " ⚠️" if md else " (SLOWER)"
        if md:
            print(f"| `{name}` | {b['wall']}s | {n['wall']}s | {speed_s} "
                  f"| {fmt_rss(b['rss_kb'])} | {fmt_rss(n['rss_kb'])} "
                  f"| {rss_s}{mark} |")
        else:
            print(f"{name:<{width}}  {b['wall']:>9}s  {n['wall']:>9}s  "
                  f"{speed_s:>8}  {fmt_rss(b['rss_kb']):>10}  "
                  f"{fmt_rss(n['rss_kb']):>10}  {rss_s:>9}{mark}")

    prefix = "- " if md else ""
    for name in sorted(set(base) - set(new)):
        print(f"{prefix}only in baseline: {name}")
    for name in sorted(set(new) - set(base)):
        print(f"{prefix}only in candidate: {name}")
    for key in ("gridsub_build_type", "quick", "host"):
        a, b = base_payload.get(key), new_payload.get(key)
        if a != b:
            print(f"{prefix}warning: {key} differs: baseline={a} "
                  f"candidate={b}")

    if not rows:
        print(f"{prefix}no common benches to compare")
        return 1
    if fail_below is not None and worst_speed is not None \
            and worst_speed < fail_below:
        print(f"{prefix}FAIL: worst speedup {worst_speed:.2f}x is below "
              f"--fail-below {fail_below}")
        return 1
    if fail_rss_above is not None and worst_rss is not None \
            and worst_rss > fail_rss_above:
        print(f"{prefix}FAIL: worst peak-RSS ratio {worst_rss:.2f}x is "
              f"above --fail-rss-above {fail_rss_above}")
        return 1
    return 0


def context_warnings(base_ctx, new_ctx):
    warnings = []
    # library_build_type describes google-benchmark itself (often a debug
    # distro build); only the library under test must be Release.
    for key in ("gridsub_build_type", "library_build_type"):
        a, b = base_ctx.get(key, "?"), new_ctx.get(key, "?")
        if str(a).lower() != str(b).lower():
            warnings.append(f"{key} differs: baseline={a} candidate={b}")
    gridsub_type = str(new_ctx.get("gridsub_build_type", "?"))
    if gridsub_type.lower() not in ("release", "?"):
        warnings.append(
            f"candidate gridsub_build_type is '{gridsub_type}', not Release")
    if base_ctx.get("host_name") != new_ctx.get("host_name"):
        warnings.append(
            f"hosts differ: baseline={base_ctx.get('host_name', '?')} "
            f"candidate={new_ctx.get('host_name', '?')} — times are not "
            "directly comparable")
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH_perf_micro.json")
    parser.add_argument("candidate", help="candidate BENCH_perf_micro.json")
    parser.add_argument("--format", choices=("text", "markdown"),
                        default="text")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="X",
                        help="exit 1 if any benchmark's speedup is below X "
                             "(e.g. 0.8 tolerates a 20%% regression)")
    parser.add_argument("--fail-rss-above", type=float, default=None,
                        metavar="Y",
                        help="exit 1 if any bench's peak RSS grew by more "
                             "than a factor of Y (gridsub-bench-v1 "
                             "reports only; e.g. 1.5 tolerates +50%%)")
    args = parser.parse_args()

    base_payload = load_payload(args.baseline)
    new_payload = load_payload(args.candidate)
    if is_report(base_payload) or is_report(new_payload):
        if not (is_report(base_payload) and is_report(new_payload)):
            sys.exit("compare_bench: cannot mix a gridsub-bench-v1 report "
                     "with a google-benchmark micro JSON")
        return compare_reports(base_payload, new_payload,
                               args.format == "markdown",
                               args.fail_below, args.fail_rss_above)

    base_ctx, base = load(args.baseline)
    new_ctx, new = load(args.candidate)

    names = [n for n in base if n in new]
    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))

    rows = []
    worst = None
    for name in names:
        speedup = base[name]["ns"] / new[name]["ns"]
        rows.append((name, base[name]["ns"], new[name]["ns"], speedup))
        if worst is None or speedup < worst:
            worst = speedup

    md = args.format == "markdown"
    if md:
        print("| benchmark | baseline | candidate | speedup |")
        print("|---|---:|---:|---:|")
    else:
        width = max((len(n) for n in names), default=12)
        print(f"{'benchmark':<{width}}  {'baseline':>10}  "
              f"{'candidate':>10}  speedup")
    for name, b_ns, n_ns, speedup in rows:
        mark = ""
        if speedup >= 1.25:
            mark = " (faster)" if not md else " 🚀"
        elif speedup <= 0.8:
            mark = " (SLOWER)" if not md else " ⚠️"
        if md:
            print(f"| `{name}` | {fmt_time(b_ns)} | {fmt_time(n_ns)} | "
                  f"{speedup:.2f}x{mark} |")
        else:
            print(f"{name:<{width}}  {fmt_time(b_ns):>10}  "
                  f"{fmt_time(n_ns):>10}  {speedup:.2f}x{mark}")

    prefix = "- " if md else ""
    for name in only_base:
        print(f"{prefix}only in baseline: {name}")
    for name in only_new:
        print(f"{prefix}only in candidate: {name}")
    for warning in context_warnings(base_ctx, new_ctx):
        print(f"{prefix}warning: {warning}")

    if not rows:
        print(f"{prefix}no common benchmarks to compare")
        return 1
    if args.fail_below is not None and worst < args.fail_below:
        print(f"{prefix}FAIL: worst speedup {worst:.2f}x is below "
              f"--fail-below {args.fail_below}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
