#!/usr/bin/env python3
"""Diff two BENCH_perf_micro.json files (google-benchmark JSON format).

Matches benchmarks by name, normalizes times to nanoseconds, and prints a
table of baseline vs candidate with the speedup factor, so a claimed
optimization ships with its measurement. Use --format markdown to publish
the table as a CI job summary.

Exit code is 0 unless --fail-below is given: then any benchmark whose
speedup falls below the threshold (i.e. a regression worse than 1/x) fails
the run. By default the diff is informational — microbench noise on shared
CI runners should not block merges.
"""

import argparse
import json
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"compare_bench: cannot read {path}: {exc}")
    benches = {}
    for entry in payload.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue  # compare raw runs, not mean/median/stddev rows
        unit = UNIT_TO_NS.get(entry.get("time_unit", "ns"))
        if unit is None or "real_time" not in entry:
            continue
        benches[entry["name"]] = {
            "ns": entry["real_time"] * unit,
            "items_per_second": entry.get("items_per_second"),
        }
    return payload.get("context", {}), benches


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def context_warnings(base_ctx, new_ctx):
    warnings = []
    # library_build_type describes google-benchmark itself (often a debug
    # distro build); only the library under test must be Release.
    for key in ("gridsub_build_type", "library_build_type"):
        a, b = base_ctx.get(key, "?"), new_ctx.get(key, "?")
        if str(a).lower() != str(b).lower():
            warnings.append(f"{key} differs: baseline={a} candidate={b}")
    gridsub_type = str(new_ctx.get("gridsub_build_type", "?"))
    if gridsub_type.lower() not in ("release", "?"):
        warnings.append(
            f"candidate gridsub_build_type is '{gridsub_type}', not Release")
    if base_ctx.get("host_name") != new_ctx.get("host_name"):
        warnings.append(
            f"hosts differ: baseline={base_ctx.get('host_name', '?')} "
            f"candidate={new_ctx.get('host_name', '?')} — times are not "
            "directly comparable")
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH_perf_micro.json")
    parser.add_argument("candidate", help="candidate BENCH_perf_micro.json")
    parser.add_argument("--format", choices=("text", "markdown"),
                        default="text")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="X",
                        help="exit 1 if any benchmark's speedup is below X "
                             "(e.g. 0.8 tolerates a 20%% regression)")
    args = parser.parse_args()

    base_ctx, base = load(args.baseline)
    new_ctx, new = load(args.candidate)

    names = [n for n in base if n in new]
    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))

    rows = []
    worst = None
    for name in names:
        speedup = base[name]["ns"] / new[name]["ns"]
        rows.append((name, base[name]["ns"], new[name]["ns"], speedup))
        if worst is None or speedup < worst:
            worst = speedup

    md = args.format == "markdown"
    if md:
        print("| benchmark | baseline | candidate | speedup |")
        print("|---|---:|---:|---:|")
    else:
        width = max((len(n) for n in names), default=12)
        print(f"{'benchmark':<{width}}  {'baseline':>10}  "
              f"{'candidate':>10}  speedup")
    for name, b_ns, n_ns, speedup in rows:
        mark = ""
        if speedup >= 1.25:
            mark = " (faster)" if not md else " 🚀"
        elif speedup <= 0.8:
            mark = " (SLOWER)" if not md else " ⚠️"
        if md:
            print(f"| `{name}` | {fmt_time(b_ns)} | {fmt_time(n_ns)} | "
                  f"{speedup:.2f}x{mark} |")
        else:
            print(f"{name:<{width}}  {fmt_time(b_ns):>10}  "
                  f"{fmt_time(n_ns):>10}  {speedup:.2f}x{mark}")

    prefix = "- " if md else ""
    for name in only_base:
        print(f"{prefix}only in baseline: {name}")
    for name in only_new:
        print(f"{prefix}only in candidate: {name}")
    for warning in context_warnings(base_ctx, new_ctx):
        print(f"{prefix}warning: {warning}")

    if not rows:
        print(f"{prefix}no common benchmarks to compare")
        return 1
    if args.fail_below is not None and worst < args.fail_below:
        print(f"{prefix}FAIL: worst speedup {worst:.2f}x is below "
              f"--fail-below {args.fail_below}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
