#!/usr/bin/env python3
"""clang-tidy runner with a ratchet (no external deps).

Runs clang-tidy (configuration: the project .clang-tidy) over every
project source in compile_commands.json and compares the findings
against the committed baseline scripts/tidy_ratchet.json:

  * a finding absent from the baseline — or a (file, check) count above
    its baseline — FAILS the run.  Fix it or waive the single line with
    `NOLINT(check-name)` plus a reason comment; blanket NOLINTs without
    a check name should not pass review.
  * counts below baseline are reported as improvements; run with
    --update-ratchet to lock them in so they cannot regress back.

The ratchet direction is one-way by construction: CI never auto-writes
the baseline, so the only way counts go up is a reviewed commit that
edits tidy_ratchet.json.

Exit codes: 0 clean/improved, 1 regressions, 2 usage error,
3 clang-tidy or compile_commands.json not found.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RATCHET_PATH = os.path.join(REPO, "scripts", "tidy_ratchet.json")
PROJECT_DIRS = ("src", "tools", "tests")

# `path:line:col: warning: message [check-name(,check-name)*]`
FINDING_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+"
    r"\[(?P<checks>[\w.,-]+)\]$", re.MULTILINE)


def find_clang_tidy(explicit):
    candidates = []
    if explicit:
        candidates.append(explicit)
    if os.environ.get("CLANG_TIDY"):
        candidates.append(os.environ["CLANG_TIDY"])
    candidates.append("clang-tidy")
    candidates.extend(f"clang-tidy-{v}" for v in range(21, 13, -1))
    for c in candidates:
        path = shutil.which(c)
        if path:
            return path
    return None


def project_sources(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return None, db_path
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    prefixes = tuple(os.path.join(REPO, d) + os.sep for d in PROJECT_DIRS)
    files = sorted({os.path.abspath(e["file"]) for e in db
                    if os.path.abspath(e["file"]).startswith(prefixes)})
    return files, db_path


def run_one(clang_tidy, build_dir, source):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", source],
        capture_output=True, text=True, check=False)
    return source, proc.stdout


def collect_findings(clang_tidy, build_dir, sources, jobs):
    counts = {}   # relpath -> {check -> count}
    samples = {}  # (relpath, check) -> first "file:line: message"
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        results = pool.map(
            lambda s: run_one(clang_tidy, build_dir, s), sources)
        for source, output in results:
            for m in FINDING_RE.finditer(output):
                path = os.path.abspath(m.group("path"))
                if not path.startswith(REPO + os.sep):
                    continue  # findings inside GTest / system headers
                rel = os.path.relpath(path, REPO)
                for check in m.group("checks").split(","):
                    counts.setdefault(rel, {})
                    counts[rel][check] = counts[rel].get(check, 0) + 1
                    samples.setdefault(
                        (rel, check),
                        f"{rel}:{m.group('line')}: {m.group('message')}")
            del source
    return counts, samples


def load_ratchet():
    if not os.path.isfile(RATCHET_PATH):
        return {}
    with open(RATCHET_PATH, encoding="utf-8") as fh:
        data = json.load(fh)
    return data.get("findings", {})


def write_ratchet(counts):
    data = {
        "comment": "clang-tidy baseline; maintained by scripts/run_tidy.py "
                   "--update-ratchet. Counts may only go down.",
        "findings": {f: dict(sorted(c.items()))
                     for f, c in sorted(counts.items())},
    }
    with open(RATCHET_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")


def diff(baseline, counts):
    regressions, improvements = [], []
    files = set(baseline) | set(counts)
    for f in sorted(files):
        checks = set(baseline.get(f, {})) | set(counts.get(f, {}))
        for check in sorted(checks):
            old = baseline.get(f, {}).get(check, 0)
            new = counts.get(f, {}).get(check, 0)
            if new > old:
                regressions.append((f, check, old, new))
            elif new < old:
                improvements.append((f, check, old, new))
    return regressions, improvements


def write_summary(path, sources, regressions, improvements, samples):
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("## clang-tidy ratchet\n\n")
        fh.write(f"Scanned {len(sources)} project sources.\n\n")
        if regressions:
            fh.write("### New findings (build failed)\n\n")
            fh.write("| file | check | baseline | now | example |\n")
            fh.write("|---|---|---:|---:|---|\n")
            for f, check, old, new in regressions:
                example = samples.get((f, check), "")
                fh.write(f"| `{f}` | `{check}` | {old} | {new} "
                         f"| {example} |\n")
        else:
            fh.write("No findings above baseline.\n")
        if improvements:
            fh.write("\n### Improvements — lock in with "
                     "`scripts/run_tidy.py --update-ratchet`\n\n")
            for f, check, old, new in improvements:
                fh.write(f"- `{f}` `{check}`: {old} → {new}\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run clang-tidy and gate on the committed ratchet.")
    parser.add_argument("--build-dir", default=os.path.join(REPO, "build"),
                        help="build tree with compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: $CLANG_TIDY, "
                             "then PATH)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 1)),
                        help="parallel clang-tidy processes")
    parser.add_argument("--update-ratchet", action="store_true",
                        help="rewrite scripts/tidy_ratchet.json with the "
                             "current counts")
    parser.add_argument("--summary", default=None,
                        help="append a markdown report (e.g. "
                             "$GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    clang_tidy = find_clang_tidy(args.clang_tidy)
    if clang_tidy is None:
        print("run_tidy: no clang-tidy on PATH (set $CLANG_TIDY or "
              "--clang-tidy); this gate runs in CI", file=sys.stderr)
        return 3
    sources, db_path = project_sources(args.build_dir)
    if sources is None:
        print(f"run_tidy: {db_path} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the presets do)",
              file=sys.stderr)
        return 3
    if not sources:
        print("run_tidy: compile_commands.json lists no project sources",
              file=sys.stderr)
        return 2

    counts, samples = collect_findings(
        clang_tidy, args.build_dir, sources, args.jobs)

    if args.update_ratchet:
        write_ratchet(counts)
        total = sum(sum(c.values()) for c in counts.values())
        print(f"run_tidy: ratchet updated — {total} finding(s) across "
              f"{len(counts)} file(s)")
        return 0

    baseline = load_ratchet()
    regressions, improvements = diff(baseline, counts)
    if args.summary:
        write_summary(args.summary, sources, regressions, improvements,
                      samples)

    for f, check, old, new in regressions:
        example = samples.get((f, check))
        print(f"REGRESSION {f} [{check}]: {old} -> {new}"
              + (f"\n    e.g. {example}" if example else ""))
    for f, check, old, new in improvements:
        print(f"improved   {f} [{check}]: {old} -> {new}")

    if regressions:
        print(f"\nrun_tidy: {len(regressions)} (file, check) pair(s) above "
              "baseline — fix, or NOLINT(check) single lines with a reason")
        return 1
    if improvements:
        print("\nrun_tidy: below baseline — lock in with --update-ratchet")
    print(f"run_tidy: {len(sources)} file(s) at or below baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
