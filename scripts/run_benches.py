#!/usr/bin/env python3
"""Bench runner: executes gridsub bench binaries and records a JSON report.

Each listed bench is run once; wall time, peak RSS, exit status, and
captured stdout are written to a single JSON file (one entry per bench)
together with the git revision, so successive PRs accumulate a comparable
perf trajectory in the repo-root BENCH_*.json files. Peak RSS comes from
the kernel's accounting for the child (wait4 → ru_maxrss), so memory
regressions in the streaming campaign pipeline show up in the same diffs
as time regressions (scripts/compare_bench.py reports both).

--progress forwards GRIDSUB_PROGRESS=1 to the benches and lets their
stderr flow straight to the terminal, so long campaigns show shard-aware
completed/total + ETA lines while they run.

bench_perf_micro (google-benchmark) is handled specially: it is run with
--benchmark_format=json and its structured output is written to the
--micro-json path with the gridsub build type added to the context.

Build-type guard: the runner reads the gridsub_build_info.json stamp the
CMake configure writes at the build root and refuses to record numbers
from a non-Release (or sanitized) build; --allow-debug downgrades the
refusal to a loud warning. Diff two recorded micro JSONs with
scripts/compare_bench.py.

Campaign scale-out: --checkpoint-dir makes every campaign bench write
per-campaign checkpoint files (and the canonical <campaign>.json) there,
so an interrupted invocation resumes instead of restarting; --shard i/N
additionally restricts each campaign to its cell partition — run the
same command with i = 0..N-1 (any mix of hosts), then fold the shard
checkpoints with tools/gridsub_campaign_merge. Both flags are forwarded
to the benches as GRIDSUB_CHECKPOINT_DIR / GRIDSUB_SHARD.
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time

MICRO_BENCH = "bench_perf_micro"


def run_with_rusage(args, timeout, env=None, stderr_passthrough=False):
    """Runs one bench child and returns (entry, stdout_text, stderr_text).

    Uses os.wait4 so the entry records the child's true peak RSS
    (ru_maxrss, KiB on Linux) alongside wall time and exit status —
    subprocess.run cannot surface rusage. stdout/stderr go to temp files
    (pipes would deadlock on multi-megabyte campaign output with nobody
    draining them mid-run); with stderr_passthrough the child's stderr
    stays on the terminal instead, for live --progress meters. A watchdog
    timer kills the child at the timeout, since there is no wait4 variant
    with one."""
    if not hasattr(os, "wait4"):  # non-POSIX fallback: no rusage
        start = time.monotonic()
        try:
            proc = subprocess.run(args, capture_output=True, text=True,
                                  timeout=timeout, env=env)
        except subprocess.TimeoutExpired:
            return ({"wall_seconds": round(time.monotonic() - start, 4),
                     "exit_code": None,
                     "error": f"timed out after {timeout}s"}, "", "")
        entry = {"wall_seconds": round(time.monotonic() - start, 4),
                 "exit_code": proc.returncode}
        return entry, proc.stdout, proc.stderr
    with tempfile.TemporaryFile() as out_fh, \
            tempfile.TemporaryFile() as err_fh:
        err_target = None if stderr_passthrough else err_fh
        start = time.monotonic()
        proc = subprocess.Popen(args, stdout=out_fh, stderr=err_target,
                                env=env)
        timed_out = threading.Event()

        def _kill():
            timed_out.set()
            proc.kill()

        watchdog = threading.Timer(timeout, _kill)
        watchdog.start()
        try:
            _, status, rusage = os.wait4(proc.pid, 0)
        finally:
            watchdog.cancel()
        elapsed = time.monotonic() - start
        # The child is already reaped; hand Popen its exit status so its
        # destructor doesn't try to wait again.
        proc.returncode = (-os.WTERMSIG(status) if os.WIFSIGNALED(status)
                           else os.WEXITSTATUS(status))
        if timed_out.is_set():
            return ({"wall_seconds": round(elapsed, 4),
                     "exit_code": None,
                     "peak_rss_kb": rusage.ru_maxrss,
                     "error": f"timed out after {timeout}s"}, "", "")
        entry = {
            "wall_seconds": round(elapsed, 4),
            "exit_code": proc.returncode,
            "peak_rss_kb": rusage.ru_maxrss,
        }
        out_fh.seek(0)
        stdout = out_fh.read().decode("utf-8", errors="replace")
        err_fh.seek(0)
        stderr = err_fh.read().decode("utf-8", errors="replace")
        return entry, stdout, stderr


def read_build_info(bin_dir):
    """Locates the gridsub_build_info.json stamp CMake writes at the build
    root (bin_dir is usually <build>/bench, so walk a few levels up)."""
    directory = os.path.abspath(bin_dir)
    for _ in range(4):
        path = os.path.join(directory, "gridsub_build_info.json")
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    return json.load(fh)
            except (OSError, json.JSONDecodeError):
                return None
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    return None


def enforce_release_build(build_info, allow_debug):
    """Performance JSON recorded from a non-Release build is misleading at
    best; refuse to run unless the caller explicitly overrides, and then
    still warn loudly (the warning also lands in CI logs)."""
    if build_info is None:
        print("[bench] WARNING: no gridsub_build_info.json found near the "
              "bin dir; cannot verify the build type (configure with the "
              "current CMakeLists to get the stamp)", file=sys.stderr)
        return None
    build_type = str(build_info.get("build_type", "unknown"))
    sanitized = bool(build_info.get("asan", False))
    if build_type.lower() == "release" and not sanitized:
        return build_type
    problem = (f"sanitized ({build_type})" if sanitized
               else f"build type '{build_type}'")
    if not allow_debug:
        print(f"[bench] REFUSING to record benchmarks from a {problem} "
              "build. Configure with --preset release (or pass "
              "--allow-debug to record anyway, loudly).", file=sys.stderr)
        sys.exit(2)
    banner = "!" * 66
    print(f"{banner}\n[bench] WARNING: recording benchmarks from a "
          f"{problem} build — numbers are NOT comparable to Release "
          f"baselines\n{banner}", file=sys.stderr)
    return build_type


def git_revision(repo_root):
    try:
        out = subprocess.run(
            ["git", "-C", repo_root, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def run_report_bench(path, timeout, quick, shard=None, checkpoint_dir=None,
                     progress=False):
    # Campaign benches honour GRIDSUB_BENCH_QUICK=1 by shrinking
    # replications (never axis coverage) so smoke runs stay fast. Set the
    # variable explicitly both ways: a full run must not silently inherit
    # quick mode from the caller's shell.
    env = dict(os.environ, GRIDSUB_BENCH_QUICK="1" if quick else "0")
    if shard:
        env["GRIDSUB_SHARD"] = shard
    else:
        env.pop("GRIDSUB_SHARD", None)
    if checkpoint_dir:
        env["GRIDSUB_CHECKPOINT_DIR"] = checkpoint_dir
    else:
        env.pop("GRIDSUB_CHECKPOINT_DIR", None)
    if progress:
        env["GRIDSUB_PROGRESS"] = "1"
    else:
        env.pop("GRIDSUB_PROGRESS", None)
    entry, stdout, stderr = run_with_rusage(
        [path], timeout, env=env, stderr_passthrough=progress)
    if entry.get("error"):
        return entry
    entry["stdout_lines"] = stdout.splitlines()
    if not progress:  # passthrough stderr went to the terminal, not to us
        entry["stderr_tail"] = stderr.splitlines()[-5:]
    return entry


def run_micro_bench(path, micro_json, quick, timeout, build_type=None):
    args = [path, "--benchmark_format=json"]
    if quick:
        # Plain double form: the "0.05s" suffix syntax needs benchmark >= 1.8.
        args.append("--benchmark_min_time=0.05")
    entry, stdout, stderr = run_with_rusage(args, timeout)
    if entry.get("error"):
        return entry
    if entry["exit_code"] == 0:
        try:
            payload = json.loads(stdout)
        except json.JSONDecodeError:
            entry["error"] = "non-JSON benchmark output"
            return entry
        # google-benchmark's "library_build_type" describes the benchmark
        # library, not gridsub; record the library under test explicitly so
        # compare_bench.py can flag debug-vs-release comparisons.
        payload.setdefault("context", {})["gridsub_build_type"] = (
            build_type or "unknown")
        with open(micro_json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        entry["written"] = os.path.basename(micro_json)
        entry["benchmark_count"] = len(payload.get("benchmarks", []))
    else:
        entry["stderr_tail"] = stderr.splitlines()[-5:]
    return entry


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benches", nargs="+",
                        help="bench target names (binaries in --bin-dir)")
    parser.add_argument("--bin-dir", required=True)
    parser.add_argument("--out", required=True,
                        help="aggregate JSON report path")
    parser.add_argument("--micro-json", default=None,
                        help="where to write bench_perf_micro's native JSON")
    parser.add_argument("--quick", action="store_true",
                        help="short micro-bench repetitions for smoke runs")
    parser.add_argument("--allow-debug", action="store_true",
                        help="record benches from a non-Release build "
                             "anyway (a loud warning replaces the refusal)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-bench timeout in seconds")
    parser.add_argument("--shard", default=None, metavar="i/N",
                        help="run only cell partition i of N in every "
                             "campaign bench (requires --checkpoint-dir; "
                             "merge with gridsub_campaign_merge)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="campaign checkpoint directory: interrupted "
                             "runs resume, finished campaigns also write "
                             "<campaign>.json here")
    parser.add_argument("--progress", action="store_true",
                        help="forward GRIDSUB_PROGRESS=1 and stream bench "
                             "stderr to the terminal (live shard-aware "
                             "completed/total + ETA lines)")
    args = parser.parse_args()

    if args.shard:
        parts = args.shard.split("/")
        if (len(parts) != 2 or not all(p.isdigit() for p in parts)
                or int(parts[1]) == 0 or int(parts[0]) >= int(parts[1])):
            parser.error(f"--shard '{args.shard}' is not 'i/N' with "
                         "0 <= i < N")
        if not args.checkpoint_dir:
            parser.error("--shard requires --checkpoint-dir (shard cells "
                         "live only in checkpoint files)")
    if args.checkpoint_dir:
        os.makedirs(args.checkpoint_dir, exist_ok=True)

    build_info = read_build_info(args.bin_dir)
    build_type = enforce_release_build(build_info, args.allow_debug)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    report = {
        "schema": "gridsub-bench-v1",
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git_revision": git_revision(repo_root),
        "host": platform.node(),
        "cpu_count": os.cpu_count(),
        "gridsub_build_type": build_type or "unknown",
        "quick": args.quick,
        "shard": args.shard,
        "results": {},
    }

    failures = 0
    names = list(dict.fromkeys(args.benches))
    if args.micro_json and MICRO_BENCH not in names:
        micro_path = os.path.join(args.bin_dir, MICRO_BENCH)
        if os.path.exists(micro_path):
            names.append(MICRO_BENCH)

    for name in names:
        path = os.path.join(args.bin_dir, name)
        if not os.path.exists(path):
            print(f"[bench] FAIL {name}: binary not found", file=sys.stderr)
            report["results"][name] = {"error": "binary not found"}
            failures += 1
            continue
        print(f"[bench] running {name} ...", flush=True)
        if name == MICRO_BENCH and args.micro_json:
            entry = run_micro_bench(path, args.micro_json, args.quick,
                                    args.timeout, build_type)
        else:
            entry = run_report_bench(path, args.timeout, args.quick,
                                     args.shard, args.checkpoint_dir,
                                     args.progress)
        report["results"][name] = entry
        if entry.get("exit_code") != 0 or entry.get("error"):
            failures += 1
            print(f"[bench] FAIL {name}: {entry.get('error', 'nonzero exit')}",
                  file=sys.stderr)
        else:
            print(f"[bench] ok   {name} ({entry['wall_seconds']}s)",
                  flush=True)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"[bench] wrote {args.out} ({len(report['results'])} benches, "
          f"{failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
