#!/usr/bin/env python3
"""Docs link-check + markdown lint (no external deps, CI-friendly).

Checks README.md, ROADMAP.md, and docs/**/*.md:

  * every relative markdown link / image target exists in the repo
    (http(s)/mailto links are not fetched — CI must not depend on the
    network);
  * #anchors into markdown files (same-file or cross-file) match a real
    heading, using GitHub's slug rules;
  * code fences are balanced;
  * no trailing whitespace.

Also cross-checks the determinism-lint waivers: every
`gridsub-lint: allow(<rule>)` in src/, tools/, and tests/ must name a
rule that exists in scripts/lint_determinism.py's rule table, so a
renamed or retired rule cannot leave stale allows behind.  (The linter
itself flags unknown allows, but only inside the directories it scans;
this sweep covers the whole tree.)

Exit code 1 with a file:line report on any violation.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_determinism import EXTENSIONS, RULES  # noqa: E402

ALLOW_NAME_RE = re.compile(r"gridsub-lint:\s*allow(?:-file)?\(\s*([\w-]+)\s*\)")

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")


def slugify(heading):
    """GitHub-style anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.strip().lower().replace(" ", "-")


def strip_code(lines):
    """Blank out fenced code blocks so links inside them are not checked."""
    out, fenced = [], False
    for line in lines:
        if line.lstrip().startswith("```"):
            fenced = not fenced
            out.append("")
            continue
        out.append("" if fenced else line)
    return out


def heading_slugs(path):
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    slugs, seen = set(), {}
    for line in strip_code(lines):
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group(1))
        # GitHub de-duplicates repeated headings with -1, -2, ...
        if slug in seen:
            seen[slug] += 1
            slug = f"{slug}-{seen[slug]}"
        else:
            seen[slug] = 0
        slugs.add(slug)
    return slugs


def check_file(repo_root, path, errors):
    with open(path, encoding="utf-8") as fh:
        raw = fh.read().splitlines()

    fence_count = sum(1 for l in raw if l.lstrip().startswith("```"))
    if fence_count % 2 != 0:
        errors.append(f"{path}: unbalanced code fences")
    for lineno, line in enumerate(raw, 1):
        if line != line.rstrip():
            errors.append(f"{path}:{lineno}: trailing whitespace")

    base = os.path.dirname(path)
    for lineno, line in enumerate(strip_code(raw), 1):
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            target, _, anchor = target.partition("#")
            dest = path if not target else os.path.normpath(
                os.path.join(base, target))
            if target and not os.path.exists(dest):
                errors.append(f"{path}:{lineno}: broken link '{target}'")
                continue
            if anchor and dest.endswith(".md"):
                if anchor not in heading_slugs(dest):
                    errors.append(
                        f"{path}:{lineno}: anchor '#{anchor}' not found "
                        f"in {os.path.relpath(dest, repo_root)}")


def check_lint_allows(repo_root, errors):
    """Flag allow() directives naming rules the linter no longer has."""
    fixture_dir = os.path.join(repo_root, "tests", "lint_fixtures")
    for top in ("src", "tools", "tests"):
        root = os.path.join(repo_root, top)
        if not os.path.isdir(root):
            continue
        for dirpath, _dirnames, files in os.walk(root):
            if os.path.abspath(dirpath).startswith(fixture_dir):
                continue  # fixtures contain intentionally-broken allows
            for name in sorted(files):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as fh:
                    for lineno, line in enumerate(fh, 1):
                        for rule in ALLOW_NAME_RE.findall(line):
                            if rule not in RULES:
                                errors.append(
                                    f"{os.path.relpath(path, repo_root)}"
                                    f":{lineno}: stale allow — rule "
                                    f"'{rule}' is not in "
                                    "lint_determinism.py's rule table")


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = [os.path.join(repo_root, "README.md"),
               os.path.join(repo_root, "ROADMAP.md")]
    docs_dir = os.path.join(repo_root, "docs")
    if os.path.isdir(docs_dir):
        for dirpath, _, files in os.walk(docs_dir):
            targets.extend(os.path.join(dirpath, f) for f in sorted(files)
                           if f.endswith(".md"))

    errors = []
    for path in targets:
        if not os.path.exists(path):
            errors.append(f"{path}: missing")
            continue
        check_file(repo_root, path, errors)
    check_lint_allows(repo_root, errors)

    for error in errors:
        print(f"[docs] {error}", file=sys.stderr)
    checked = ", ".join(os.path.relpath(p, repo_root) for p in targets)
    if errors:
        print(f"[docs] {len(errors)} problem(s) in: {checked}",
              file=sys.stderr)
        return 1
    print(f"[docs] ok: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
