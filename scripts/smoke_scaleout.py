#!/usr/bin/env python3
"""Scale-out smoke: interrupted+resumed and sharded+merged campaign runs
must produce byte-identical JSON to the straight-through run.

Drives a real campaign bench binary (default: bench_ablation_sample_size,
whose cells are deterministic in the cell seed) through the three
workflows end to end:

  1. straight    — one uninterrupted run with --checkpoint-dir; the bench
                   writes the canonical <campaign>.json next to its
                   checkpoint;
  2. interrupted — the straight run's checkpoint is truncated (dropping
                   whole records plus leaving a partial trailing line,
                   i.e. exactly what kill -9 mid-append leaves) and the
                   bench is re-run on it, resuming the missing cells;
  3. sharded     — three processes each run --shard i/3 into a shared
                   directory and gridsub_campaign_merge folds the shard
                   checkpoints into one JSON.

Any byte difference between (2) or (3) and (1) — JSON or bench stdout —
is a failure. Exercises the same binaries and flags a multi-host user
would, unlike the unit suites which drive the library API.
"""

import argparse
import filecmp
import os
import shutil
import subprocess
import sys
import tempfile

CAMPAIGN = "ablation_sample_size"


def run(cmd, env_extra=None, **kwargs):
    env = dict(os.environ)
    env.pop("GRIDSUB_SHARD", None)
    env.pop("GRIDSUB_CHECKPOINT_DIR", None)
    env["GRIDSUB_BENCH_QUICK"] = "1"
    env.update(env_extra or {})
    print(f"[smoke] $ {' '.join(cmd)}"
          + (f"  ({' '.join(f'{k}={v}' for k, v in env_extra.items())})"
             if env_extra else ""), flush=True)
    return subprocess.run(cmd, env=env, check=True, text=True,
                          capture_output=True, **kwargs)


def fail(msg):
    print(f"[smoke] FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", required=True,
                        help="directory holding the bench binaries")
    parser.add_argument("--merge-tool", required=True,
                        help="path to gridsub_campaign_merge")
    parser.add_argument("--bench", default=f"bench_{CAMPAIGN}")
    parser.add_argument("--keep", action="store_true",
                        help="keep the work directory for inspection")
    args = parser.parse_args()

    bench = os.path.join(args.bin_dir, args.bench)
    work = tempfile.mkdtemp(prefix="gridsub-smoke-scaleout-")
    straight = os.path.join(work, "straight")
    resume = os.path.join(work, "resume")
    shards = os.path.join(work, "shards")
    for d in (straight, resume, shards):
        os.makedirs(d)

    try:
        # 1. Straight-through run (the reference).
        ref = run([bench], {"GRIDSUB_CHECKPOINT_DIR": straight})
        ref_json = os.path.join(straight, f"{CAMPAIGN}.json")
        ref_ckpt = os.path.join(straight, f"{CAMPAIGN}.ckpt")
        if not os.path.exists(ref_json):
            return fail(f"straight run wrote no {ref_json}")

        # 2. Interrupted + resumed: keep the header and the first half of
        # the records, then clip 20 bytes off the next record to fake the
        # mid-append kill.
        with open(ref_ckpt, "rb") as fh:
            lines = fh.readlines()
        n_keep = 1 + (len(lines) - 1) // 2
        with open(os.path.join(resume, f"{CAMPAIGN}.ckpt"), "wb") as fh:
            fh.writelines(lines[:n_keep])
            fh.write(lines[n_keep][:max(len(lines[n_keep]) - 20, 5)])
        resumed = run([bench], {"GRIDSUB_CHECKPOINT_DIR": resume})
        if resumed.stdout != ref.stdout:
            return fail("resumed bench stdout differs from straight run")
        if not filecmp.cmp(os.path.join(resume, f"{CAMPAIGN}.json"),
                           ref_json, shallow=False):
            return fail("resumed campaign JSON differs from straight run")
        print(f"[smoke] ok   interrupted+resumed run is byte-identical "
              f"(resumed {len(lines) - n_keep} of {len(lines) - 1} cells)")

        # 3. Three shards + merge.
        for i in range(3):
            run([bench], {"GRIDSUB_CHECKPOINT_DIR": shards,
                          "GRIDSUB_SHARD": f"{i}/3"})
        merged = os.path.join(work, "merged.json")
        run([args.merge_tool, "--dir", shards, "--name", CAMPAIGN,
             "--out", merged])
        if not filecmp.cmp(merged, ref_json, shallow=False):
            return fail("3-shard merged JSON differs from straight run")
        print("[smoke] ok   3-shard merged run is byte-identical")
        print("[smoke] scale-out smoke passed")
        return 0
    except subprocess.CalledProcessError as e:
        sys.stderr.write(e.stderr or "")
        return fail(f"command failed with exit code {e.returncode}")
    finally:
        if args.keep:
            print(f"[smoke] work dir kept at {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
