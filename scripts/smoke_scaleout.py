#!/usr/bin/env python3
"""Scale-out smoke: interrupted+resumed and sharded+merged campaign runs
must produce byte-identical JSON to the straight-through run.

Drives a real campaign bench binary (default: bench_ablation_sample_size,
whose cells are deterministic in the cell seed) through the three
workflows end to end:

  1. straight    — one uninterrupted run with --checkpoint-dir; the bench
                   writes the canonical <campaign>.json next to its
                   checkpoint;
  2. interrupted — the straight run's checkpoint is truncated (dropping
                   whole records plus leaving a partial trailing line,
                   i.e. exactly what kill -9 mid-append leaves) and the
                   bench is re-run on it, resuming the missing cells;
  3. sharded     — three processes each run --shard i/3 into a shared
                   directory and gridsub_campaign_merge folds the shard
                   checkpoints into one JSON.

A staged bench (default: bench_table6_cross_week, whose tune stage
parameterizes the transfer campaign) then exercises stage-output
checkpointing the same way:

  4. staged kill — the published fit-stage output is cut back down to a
                   torn mid-fit .stage.ckpt and the bench re-run: it must
                   resume the fit cell-by-cell, republish the stage, and
                   print byte-identical tables + transfer JSON;
  5. staged shards — three sequential --shard i/3 runs share a directory;
                   shard 0 publishes the fit stage, shards 1-2 must LOAD
                   it (asserted on their stderr) instead of re-fitting,
                   and the streamed shard merge must reproduce the
                   straight run's transfer JSON.

Any byte difference between (2)/(3)/(4)/(5) and its straight reference —
JSON or bench stdout — is a failure. Exercises the same binaries and
flags a multi-host user would, unlike the unit suites which drive the
library API.
"""

import argparse
import filecmp
import os
import shutil
import subprocess
import sys
import tempfile

CAMPAIGN = "ablation_sample_size"
STAGE = "table6_tune"
STAGED_CAMPAIGN = "table6_transfer"


def run(cmd, env_extra=None, **kwargs):
    env = dict(os.environ)
    env.pop("GRIDSUB_SHARD", None)
    env.pop("GRIDSUB_CHECKPOINT_DIR", None)
    env["GRIDSUB_BENCH_QUICK"] = "1"
    env.update(env_extra or {})
    print(f"[smoke] $ {' '.join(cmd)}"
          + (f"  ({' '.join(f'{k}={v}' for k, v in env_extra.items())})"
             if env_extra else ""), flush=True)
    return subprocess.run(cmd, env=env, check=True, text=True,
                          capture_output=True, **kwargs)


def fail(msg):
    print(f"[smoke] FAIL: {msg}", file=sys.stderr)
    return 1


def staged_flows(args, work, staged, staged_resume, staged_shards):
    """Flows 4 and 5: fit-stage kill+resume and stage sharing across
    shards, driven through the staged bench binary."""
    staged_bench = os.path.join(args.bin_dir, args.staged_bench)

    # 4a. Straight staged run: publishes <stage>.stage and writes the
    # canonical transfer JSON next to it.
    s_ref = run([staged_bench], {"GRIDSUB_CHECKPOINT_DIR": staged})
    s_ref_json = os.path.join(staged, f"{STAGED_CAMPAIGN}.json")
    stage_file = os.path.join(staged, f"{STAGE}.stage")
    if not os.path.exists(s_ref_json):
        return fail(f"staged straight run wrote no {s_ref_json}")
    if not os.path.exists(stage_file):
        return fail(f"staged straight run published no {stage_file}")

    # 4b. Mid-fit kill: a published .stage file is one identity header
    # line followed by a complete cell checkpoint, so dropping the header
    # and truncating mid-record reconstructs exactly what kill -9 leaves
    # behind in <stage>.stage.ckpt before the stage was ever published.
    with open(stage_file, "rb") as fh:
        ckpt_lines = fh.readlines()[1:]
    n_keep = 1 + (len(ckpt_lines) - 1) // 2
    with open(os.path.join(staged_resume, f"{STAGE}.stage.ckpt"),
              "wb") as fh:
        fh.writelines(ckpt_lines[:n_keep])
        fh.write(ckpt_lines[n_keep][:max(len(ckpt_lines[n_keep]) - 20, 5)])
    s_resumed = run([staged_bench],
                    {"GRIDSUB_CHECKPOINT_DIR": staged_resume})
    if "(resumed" not in s_resumed.stderr:
        return fail("staged resume did not report resumed fit cells "
                    f"(stderr: {s_resumed.stderr!r})")
    if s_resumed.stdout != s_ref.stdout:
        return fail("staged resume stdout differs from straight run")
    if not filecmp.cmp(os.path.join(staged_resume,
                                    f"{STAGED_CAMPAIGN}.json"),
                       s_ref_json, shallow=False):
        return fail("staged resume transfer JSON differs from straight run")
    print(f"[smoke] ok   killed-mid-fit stage resumed byte-identically "
          f"(resumed {n_keep - 1} of {len(ckpt_lines) - 1} fit cells)")

    # 5. Staged shards: run sequentially so shard 0 publishes the fit
    # stage before its siblings start — they must load it, not re-fit.
    for i in range(3):
        r = run([staged_bench], {"GRIDSUB_CHECKPOINT_DIR": staged_shards,
                                 "GRIDSUB_SHARD": f"{i}/3"})
        if i > 0 and f"[stage] {STAGE}: loaded" not in r.stderr:
            return fail(f"shard {i} re-fit the stage instead of loading "
                        f"shard 0's (stderr: {r.stderr!r})")
    merged = os.path.join(work, "staged-merged.json")
    run([args.merge_tool, "--dir", staged_shards,
         "--name", STAGED_CAMPAIGN, "--out", merged])
    if not filecmp.cmp(merged, s_ref_json, shallow=False):
        return fail("staged 3-shard merged JSON differs from straight run")
    print("[smoke] ok   3 shards shared one fit stage; streamed merge is "
          "byte-identical")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin-dir", required=True,
                        help="directory holding the bench binaries")
    parser.add_argument("--merge-tool", required=True,
                        help="path to gridsub_campaign_merge")
    parser.add_argument("--bench", default=f"bench_{CAMPAIGN}")
    parser.add_argument("--staged-bench", default="bench_table6_cross_week",
                        help="staged bench for the fit-stage kill/shard "
                             "flows (pass '' to skip them)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the work directory for inspection")
    args = parser.parse_args()

    bench = os.path.join(args.bin_dir, args.bench)
    work = tempfile.mkdtemp(prefix="gridsub-smoke-scaleout-")
    straight = os.path.join(work, "straight")
    resume = os.path.join(work, "resume")
    shards = os.path.join(work, "shards")
    staged = os.path.join(work, "staged-straight")
    staged_resume = os.path.join(work, "staged-resume")
    staged_shards = os.path.join(work, "staged-shards")
    for d in (straight, resume, shards,
              staged, staged_resume, staged_shards):
        os.makedirs(d)

    try:
        # 1. Straight-through run (the reference).
        ref = run([bench], {"GRIDSUB_CHECKPOINT_DIR": straight})
        ref_json = os.path.join(straight, f"{CAMPAIGN}.json")
        ref_ckpt = os.path.join(straight, f"{CAMPAIGN}.ckpt")
        if not os.path.exists(ref_json):
            return fail(f"straight run wrote no {ref_json}")

        # 2. Interrupted + resumed: keep the header and the first half of
        # the records, then clip 20 bytes off the next record to fake the
        # mid-append kill.
        with open(ref_ckpt, "rb") as fh:
            lines = fh.readlines()
        n_keep = 1 + (len(lines) - 1) // 2
        with open(os.path.join(resume, f"{CAMPAIGN}.ckpt"), "wb") as fh:
            fh.writelines(lines[:n_keep])
            fh.write(lines[n_keep][:max(len(lines[n_keep]) - 20, 5)])
        resumed = run([bench], {"GRIDSUB_CHECKPOINT_DIR": resume})
        if resumed.stdout != ref.stdout:
            return fail("resumed bench stdout differs from straight run")
        if not filecmp.cmp(os.path.join(resume, f"{CAMPAIGN}.json"),
                           ref_json, shallow=False):
            return fail("resumed campaign JSON differs from straight run")
        print(f"[smoke] ok   interrupted+resumed run is byte-identical "
              f"(resumed {len(lines) - n_keep} of {len(lines) - 1} cells)")

        # 3. Three shards + merge.
        for i in range(3):
            run([bench], {"GRIDSUB_CHECKPOINT_DIR": shards,
                          "GRIDSUB_SHARD": f"{i}/3"})
        merged = os.path.join(work, "merged.json")
        run([args.merge_tool, "--dir", shards, "--name", CAMPAIGN,
             "--out", merged])
        if not filecmp.cmp(merged, ref_json, shallow=False):
            return fail("3-shard merged JSON differs from straight run")
        print("[smoke] ok   3-shard merged run is byte-identical")

        if args.staged_bench:
            code = staged_flows(args, work, staged, staged_resume,
                                staged_shards)
            if code:
                return code
        print("[smoke] scale-out smoke passed")
        return 0
    except subprocess.CalledProcessError as e:
        sys.stderr.write(e.stderr or "")
        return fail(f"command failed with exit code {e.returncode}")
    finally:
        if args.keep:
            print(f"[smoke] work dir kept at {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
