#!/usr/bin/env python3
"""Determinism linter for output-affecting modules (no external deps).

gridsub's contract is byte-identical output for a given (inputs, root
seed) at any thread count, resume point, or shard split.  That property
is easy to break with one innocuous line — iterating an unordered
container into a fold, formatting a double through the locale-sensitive
iostream path, seeding from the wall clock.  This linter scans the
modules whose output reaches users (src/exp, src/report, src/stats,
src/traces, tools) plus the simulation core the trajectories flow
through (src/sim, src/online) for the known failure patterns.

Rules (name — what it flags):

  unordered-container  range-for iteration over a variable or member
                       declared as std::unordered_map/set in the same
                       file.  Unordered iteration order varies with
                       libstdc++ version, hash seed, and insertion
                       history; anything folded or serialized from it
                       is nondeterministic.  Keyed lookup is fine —
                       only iteration is flagged.
  raw-rand             std::rand / srand / random_device.  All
                       randomness must come from the seeded stats::Rng
                       layer so runs replay.
  wall-clock           system_clock / steady_clock / time(...) /
                       gettimeofday / clock().  Timestamps in output
                       differ per run; simulated time comes from the
                       DES clock.
  pointer-key          ordered containers or comparators keyed on
                       pointer values (std::map<T*, ...>, std::set<T*>,
                       std::less<T*>).  Address order is ASLR order.
  stream-float         iostream float-formatting state (setprecision,
                       fixed/scientific/hexfloat/defaultfloat,
                       .precision(...)).  Stream formatting is
                       locale-sensitive and defaults to 6 significant
                       digits; serialize doubles with the to_chars
                       helpers (exp::detail::json_number,
                       traces::detail::csv_number) instead.
  printf-float         %f / %e / %g / %a conversions in format strings.
                       printf floats follow the C locale setting
                       (decimal point!) and a fixed precision.
  locale               std::locale / setlocale / imbue.  Locale state
                       is global and changes how every number parses
                       and prints.

Escape hatch — each use must name the rule and carry a reason:

  some_code();  // gridsub-lint: allow(printf-float) console diagnostic

applies to its own line (or, on a line by itself, to the next line).
A file-wide waiver for one rule:

  // gridsub-lint: allow-file(printf-float) CLI tool, console output only

Unknown rule names in an allow and allows that suppress nothing are
themselves errors, so waivers cannot rot in place.

Exit 0 when clean; 1 with a file:line report otherwise.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

# view: which text a rule matches against.
#   "code"    — comments stripped AND string/char literals blanked
#   "strings" — comments stripped, literals kept (printf formats live there)
RULES = {
    "unordered-container": {
        "view": "code",
        "message": "iteration over an unordered container "
                   "(order varies per run/platform)",
    },
    "raw-rand": {
        "view": "code",
        "pattern": re.compile(
            r"\bstd\s*::\s*rand\b|\bsrand\s*\(|\bstd\s*::\s*random_device\b"
            r"|\brandom_device\b"),
        "message": "unseeded randomness outside the stats::Rng layer",
    },
    "wall-clock": {
        "view": "code",
        "pattern": re.compile(
            r"\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b"
            r"|\btime\s*\(\s*(?:nullptr|NULL|0|&)"
            r"|\bgettimeofday\s*\(|\bclock\s*\(\s*\)"),
        "message": "wall-clock read (timestamps differ per run; "
                   "use the simulation clock)",
    },
    "pointer-key": {
        "view": "code",
        "pattern": re.compile(
            r"\bstd\s*::\s*(?:map|set|multimap|multiset|less|greater)\s*<"
            r"\s*(?:const\s+)?\w+(?:\s*::\s*\w+)*\s*\*"),
        "message": "container or comparator keyed on a pointer value "
                   "(address order is ASLR order)",
    },
    "stream-float": {
        "view": "code",
        "pattern": re.compile(
            r"\bsetprecision\s*\(|\.\s*precision\s*\("
            r"|\bstd\s*::\s*(?:fixed|scientific|hexfloat|defaultfloat)\b"),
        "message": "iostream float formatting (locale-sensitive, lossy); "
                   "use the to_chars helpers",
    },
    "printf-float": {
        "view": "strings",
        "pattern": re.compile(
            r"%[-+ #0]*(?:\d+|\*)?(?:\.(?:\d+|\*))?[aAeEfFgG]"),
        "message": "printf-family float conversion "
                   "(locale decimal point, fixed precision)",
    },
    "locale": {
        "view": "code",
        "pattern": re.compile(
            r"\bstd\s*::\s*locale\b|\bsetlocale\s*\(|\.\s*imbue\s*\("),
        "message": "locale manipulation (global state; changes every "
                   "number's parse/print)",
    },
}

ALLOW_RE = re.compile(
    r"//\s*gridsub-lint:\s*allow(?P<file>-file)?"
    r"\(\s*(?P<rule>[\w-]+)\s*\)\s*(?P<reason>\S.*)?$")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
    r".*?>\s*(?:&\s*)?(\w+)\s*(?:[;={(,)]|$)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")

DEFAULT_DIRS = ("src/exp", "src/fault", "src/online", "src/report",
                "src/serve", "src/sim", "src/stats", "src/traces", "tools")
EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")


# --------------------------------------------------------------------------
# Comment / literal stripping
# --------------------------------------------------------------------------

def strip_views(text):
    """Returns (code_lines, string_lines): both with comments blanked;
    code_lines additionally blanks string/char literal contents.  Every
    blanked character becomes a space so columns and line counts hold."""
    code, strings = [], []
    i, n = 0, len(text)
    state = "normal"  # normal | line-comment | block-comment | dq | sq | raw
    raw_delim = ""
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "normal":
            if ch == "/" and nxt == "/":
                state = "line-comment"
                code.append("  ")
                strings.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block-comment"
                code.append("  ")
                strings.append("  ")
                i += 2
                continue
            m = re.match(r'R"([^(\\\s]{0,16})\(', text[i:]) if ch == "R" \
                else None
            if m:
                state = "raw"
                raw_delim = ")" + m.group(1) + '"'
                code.append(" " * len(m.group(0)))
                strings.append(m.group(0))
                i += len(m.group(0))
                continue
            if ch == '"':
                state = "dq"
            elif ch == "'":
                state = "sq"
            code.append(ch)
            strings.append(ch)
        elif state == "line-comment":
            if ch == "\n":
                state = "normal"
                code.append(ch)
                strings.append(ch)
            else:
                code.append(" ")
                strings.append(" ")
        elif state == "block-comment":
            if ch == "*" and nxt == "/":
                state = "normal"
                code.append("  ")
                strings.append("  ")
                i += 2
                continue
            keep = ch if ch == "\n" else " "
            code.append(keep)
            strings.append(keep)
        elif state in ("dq", "sq"):
            quote = '"' if state == "dq" else "'"
            if ch == "\\" and nxt:
                code.append("  ")
                strings.append(text[i:i + 2])
                i += 2
                continue
            if ch == quote:
                state = "normal"
                code.append(ch)
            elif ch == "\n":  # unterminated; bail to normal
                state = "normal"
                code.append(ch)
            else:
                code.append(" ")
            strings.append(ch)
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "normal"
                code.append(" " * len(raw_delim))
                strings.append(raw_delim)
                i += len(raw_delim)
                continue
            keep = ch if ch == "\n" else " "
            code.append(keep)
            strings.append(ch)
        i += 1
    return "".join(code).split("\n"), "".join(strings).split("\n")


# --------------------------------------------------------------------------
# Allow-directive collection
# --------------------------------------------------------------------------

class Allow:
    def __init__(self, line_no, rule, file_wide, reason):
        self.line_no = line_no        # line the directive sits on
        self.rule = rule
        self.file_wide = file_wide
        self.reason = reason
        self.used = False

    def covers(self, line_no, rule):
        if rule != self.rule:
            return False
        if self.file_wide:
            return True
        # Same line, or a directive-only line waiving the next line.
        return line_no in (self.line_no, self.line_no + 1)


def collect_allows(raw_lines, path, errors):
    allows = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m is None:
            if "gridsub-lint" in line:
                errors.append(
                    f"{path}:{idx}: [bad-allow] malformed gridsub-lint "
                    "directive (expected "
                    "`// gridsub-lint: allow(<rule>) <reason>`)")
            continue
        rule = m.group("rule")
        if rule not in RULES:
            errors.append(
                f"{path}:{idx}: [unknown-allow] allow names unknown rule "
                f"'{rule}' (known: {', '.join(sorted(RULES))})")
            continue
        if not m.group("reason"):
            errors.append(
                f"{path}:{idx}: [bad-allow] allow({rule}) carries no "
                "reason — say why the waiver is safe")
            continue
        allows.append(Allow(idx, rule, m.group("file") is not None,
                            m.group("reason").strip()))
    return allows


# --------------------------------------------------------------------------
# Per-file scan
# --------------------------------------------------------------------------

def unordered_hits(code_lines):
    """(line_no, name) for every range-for over a known unordered var."""
    names = set()
    for line in code_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    if not names:
        return []
    hits = []
    for idx, line in enumerate(code_lines, start=1):
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1).strip()
            # Last identifier of the expr: `m`, `obj.m`, `this->m`, `m_`.
            tail = re.search(r"(\w+)\s*(?:\(\s*\))?\s*$", expr)
            if tail and tail.group(1) in names:
                hits.append((idx, tail.group(1)))
    return hits


def scan_file(path, errors):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    raw_lines = text.split("\n")
    code_lines, string_lines = strip_views(text)
    allows = collect_allows(raw_lines, path, errors)

    findings = []  # (line_no, rule, detail)
    for idx, name in unordered_hits(code_lines):
        findings.append((idx, "unordered-container",
                         f"range-for over unordered container '{name}'"))
    for rule, spec in RULES.items():
        pattern = spec.get("pattern")
        if pattern is None:
            continue
        lines = code_lines if spec["view"] == "code" else string_lines
        for idx, line in enumerate(lines, start=1):
            if pattern.search(line):
                findings.append((idx, rule, spec["message"]))

    reported = 0
    for line_no, rule, detail in sorted(findings):
        waived = False
        for allow in allows:
            if allow.covers(line_no, rule):
                allow.used = True
                waived = True
                break
        if not waived:
            errors.append(f"{path}:{line_no}: [{rule}] {detail}")
            reported += 1
    for allow in allows:
        if not allow.used:
            kind = "allow-file" if allow.file_wide else "allow"
            errors.append(
                f"{path}:{allow.line_no}: [unused-allow] "
                f"{kind}({allow.rule}) suppresses nothing — remove it")
    return reported


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def gather_sources(roots):
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Scan output-affecting modules for nondeterminism.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan "
                             f"(default: {' '.join(DEFAULT_DIRS)} "
                             "under the repo root)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(rule)
        return 0

    if args.paths:
        roots = args.paths
    else:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        roots = [os.path.join(repo, d) for d in DEFAULT_DIRS]

    missing = [r for r in roots if not os.path.exists(r)]
    if missing:
        print(f"lint_determinism: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    errors = []
    n_files = 0
    for path in gather_sources(roots):
        n_files += 1
        scan_file(path, errors)

    for err in errors:
        print(err)
    if errors:
        print(f"\nlint_determinism: {len(errors)} finding(s) "
              f"in {n_files} file(s)")
        return 1
    print(f"lint_determinism: {n_files} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
