// Memory stress for the streaming campaign path: the same analytic
// campaign at 1x and then 10x the cell count, both streamed through a
// FoldSink, with the process peak RSS sampled after each. Buffer-then-
// fold would grow peak memory linearly with the cell count; fold-as-you-
// go keeps it at O(reorder window + groups), so the 10x run should leave
// the peak essentially where the 1x run put it. ru_maxrss is monotone,
// which is exactly what makes the comparison honest: any growth the big
// run causes is visible, and none should be.
//
// scripts/run_benches.py additionally records this process's peak RSS
// into the BENCH_*.json payload, so the flat-memory claim is tracked
// across revisions like any other bench metric.

#include <sys/resource.h>

#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "exp/campaign.hpp"
#include "exp/fold.hpp"
#include "report/table.hpp"

namespace {

using namespace gridsub;

/// Peak resident set of this process so far, in KiB (Linux ru_maxrss).
long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

/// A cheap analytic evaluator: enough arithmetic to produce plausible
/// metric spreads, no allocation beyond the metrics vector itself.
exp::CellMetrics analytic_cell(const exp::CellContext& ctx) {
  const double x = static_cast<double>(ctx.seed % 100003) / 100003.0;
  return {{"latency", 300.0 + 900.0 * x},
          {"cost", 1.0 + 0.5 * std::sin(static_cast<double>(ctx.flat))},
          {"subs", 1.0 + 3.0 * x * x}};
}

/// Streams one campaign of `scenarios` x 4 x `reps` cells through a
/// FoldSink and returns the peak RSS (KiB) observed after it finished.
long run_streamed(const std::string& name, std::size_t scenarios,
                  std::size_t reps) {
  exp::CampaignAxes axes;
  axes.name = name;
  axes.scenario_axis = "cell block";
  axes.strategy_axis = "variant";
  for (std::size_t i = 0; i < scenarios; ++i) {
    axes.scenario_labels.push_back("block" + std::to_string(i));
  }
  axes.strategy_labels = {"a", "b", "c", "d"};
  axes.replications = reps;
  axes.root_seed = 20090611;

  exp::FoldSink sink;
  exp::CampaignRunner().run_with_sink(axes, analytic_cell, sink);
  const exp::CampaignSummary summary = sink.take();
  // Touch the summary so the fold cannot be optimized away.
  if (summary.rows.size() != scenarios * 4) {
    std::cerr << "unexpected row count " << summary.rows.size() << "\n";
    std::exit(1);
  }
  return peak_rss_kb();
}

}  // namespace

int main() {
  const std::size_t base_scenarios = bench::quick_mode() ? 50 : 200;
  const std::size_t reps = 25;
  const std::size_t base_cells = base_scenarios * 4 * reps;
  bench::print_header(
      "stress_streaming",
      "constant-memory campaign aggregation (streaming-pipeline check)",
      "same analytic campaign at 1x and 10x cells, peak RSS after each; "
      "flat peak = fold-as-you-go, growing peak = buffering regression");

  const long baseline = peak_rss_kb();
  const long after_1x = run_streamed("stress_1x", base_scenarios, reps);
  const long after_10x =
      run_streamed("stress_10x", base_scenarios * 10, reps);

  report::Table table({"phase", "cells", "peak RSS (KiB)"});
  table.row().cell("startup").cell(0LL).cell(static_cast<long long>(
      baseline));
  table.row()
      .cell("after 1x streamed")
      .cell(static_cast<long long>(base_cells))
      .cell(static_cast<long long>(after_1x));
  table.row()
      .cell("after 10x streamed")
      .cell(static_cast<long long>(base_cells * 10))
      .cell(static_cast<long long>(after_10x));
  table.print(std::cout);

  const double growth =
      after_1x > 0 ? static_cast<double>(after_10x) /
                         static_cast<double>(after_1x)
                   : 0.0;
  std::cout << "\npeak RSS growth 1x -> 10x: " << growth
            << "x for 10x the cells (streamed aggregation holds memory at "
               "the reorder window + one aggregate row per group).\n";
  // A real buffering regression shows up as ~10x growth; allow generous
  // slack for allocator noise and the 10x-larger label/row vectors.
  if (growth > 3.0) {
    std::cout << "WARNING: peak RSS grew " << growth
              << "x — the streamed path appears to be buffering cells.\n";
    return 1;
  }
  return 0;
}
