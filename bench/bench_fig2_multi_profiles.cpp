// Figure 2: E_J(t∞) profiles of the multiple-submission strategy for
// b = 1..10 on dataset 2006-IX.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/multiple_submission.hpp"
#include "report/series.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("fig2_multi_profiles",
                      "Figure 2 (E_J vs timeout for b = 1..10)");

  const auto m = bench::load_model("2006-IX");
  report::Figure fig("Figure 2: expectation of execution time (2006-IX)",
                     "timeout t_inf (s)", "E_J (s)");
  for (int b = 1; b <= 10; ++b) {
    const core::MultipleSubmission multi(m, b);
    std::vector<double> ts, ejs;
    for (double t = 50.0; t <= 2000.0; t += 25.0) {
      const double ej = multi.expectation(t);
      if (!std::isfinite(ej)) continue;
      ts.push_back(t);
      ejs.push_back(ej);
    }
    fig.add("b=" + std::to_string(b), std::move(ts), std::move(ejs));
  }
  fig.print(std::cout, 20);
  std::cout << "\npaper shape check: curves nest downward with b; the "
               "post-minimum slope flattens as b grows.\n";
  return 0;
}
