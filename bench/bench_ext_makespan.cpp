// Extension (paper §8 future work): strategy impact on grid-application
// *makespan*. A bag of n independent tasks finishes with the slowest task,
// so the strategy's tail — not its mean — governs large applications. We
// sweep the bag size for the three strategies at their per-job latency
// optima on 2006-IX and report E[makespan], tail quantiles and billed
// job-seconds.

#include <iostream>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "core/total_latency.hpp"
#include "report/table.hpp"
#include "workflow/makespan.hpp"

int main() {
  using namespace gridsub;
  bench::print_header(
      "ext_makespan",
      "extension of §8 (future work): application makespan under each "
      "strategy",
      "bag of n tasks, 30 min runtime each, strategies at their 2006-IX "
      "E_J-optimal parameters");

  const auto m = bench::load_model("2006-IX");
  const double runtime = 1800.0;

  const auto single_opt = core::SingleResubmission(m).optimize();
  const auto multi3_opt = core::MultipleSubmission(m, 3).optimize();
  const auto multi5_opt = core::MultipleSubmission(m, 5).optimize();
  const auto delayed_opt = core::DelayedResubmission(m).optimize();

  struct Entry {
    const char* label;
    workflow::MakespanModel model;
  };
  const Entry entries[] = {
      {"single-resubmission",
       workflow::MakespanModel(
           core::TotalLatencyDistribution::single(m, single_opt.t_inf))},
      {"multiple b=3",
       workflow::MakespanModel(
           core::TotalLatencyDistribution::multiple(m, 3,
                                                    multi3_opt.t_inf))},
      {"multiple b=5",
       workflow::MakespanModel(
           core::TotalLatencyDistribution::multiple(m, 5,
                                                    multi5_opt.t_inf))},
      {"delayed-resubmission",
       workflow::MakespanModel(core::TotalLatencyDistribution::delayed(
           m, delayed_opt.t0, delayed_opt.t_inf))},
  };

  for (const std::size_t n : {1u, 10u, 100u, 1000u}) {
    std::cout << "-- bag of " << n << " tasks (runtime " << runtime
              << " s)\n";
    report::Table table({"strategy", "E[makespan] (s)", "median (s)",
                         "p95 (s)", "p99 (s)", "latency share",
                         "job-seconds/task"});
    for (const auto& e : entries) {
      const auto est = e.model.estimate({n, runtime});
      table.row()
          .cell(e.label)
          .cell(est.expectation, 0)
          .cell(est.median, 0)
          .cell(est.p95, 0)
          .cell(est.p99, 0)
          .percent((est.expectation - runtime) / est.expectation)
          .cell(est.job_seconds / static_cast<double>(n), 0);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "-- chain workflow: registration(1) -> analysis(200) -> "
               "statistics(4), runtimes 300/1800/120 s\n";
  const workflow::WorkflowChain chain{{1, 300.0}, {200, 1800.0}, {4, 120.0}};
  report::Table chain_table(
      {"strategy", "E[chain makespan] (s)", "vs compute floor"});
  for (const auto& e : entries) {
    const double total = e.model.expected_chain_makespan(chain);
    chain_table.row()
        .cell(e.label)
        .cell(total, 0)
        .percent(total / workflow::compute_floor(chain) - 1.0);
  }
  chain_table.print(std::cout);
  std::cout
      << "\nexpected shape: at n = 1 the strategies rank by E_J (paper "
         "Tables 2/3); as n grows the latency share of the makespan rises "
         "and multiple submission's tail-taming widens its lead — the "
         "application-level argument for redundancy the paper motivates "
         "in its introduction.\n";
  return 0;
}
