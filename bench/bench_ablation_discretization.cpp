// Ablation: the evaluation grid step is *the* numerical knob of the whole
// pipeline (every E_J is an integral functional of a discretized F̃).
// Sweep the step and report the induced error in the single/multiple/
// delayed optima plus model-construction and optimization wall time.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "report/table.hpp"
#include "traces/datasets.hpp"

namespace {
double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  using namespace gridsub;
  bench::print_header("ablation_discretization",
                      "grid-step sensitivity of all strategy optima",
                      "reference = 0.5 s grid");

  const auto trace = traces::make_trace_by_name("2006-IX");

  struct Ref {
    double ej1, ejb5, ejd;
  } ref{};
  report::Table table({"step(s)", "E_J single", "E_J multi(b=5)",
                       "E_J delayed", "err vs ref", "build+opt ms"});
  for (double step : {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0}) {
    const auto t_start = std::chrono::steady_clock::now();
    const auto m = model::DiscretizedLatencyModel::from_trace(trace, step);
    const double e1 =
        core::SingleResubmission(m).optimize().metrics.expectation;
    const double e5 =
        core::MultipleSubmission(m, 5).optimize().metrics.expectation;
    const double ed =
        core::DelayedResubmission(m).optimize().metrics.expectation;
    const double elapsed = ms_since(t_start);
    if (step == 0.5) ref = {e1, e5, ed};
    const double err = std::max({std::abs(e1 - ref.ej1) / ref.ej1,
                                 std::abs(e5 - ref.ejb5) / ref.ejb5,
                                 std::abs(ed - ref.ejd) / ref.ejd});
    table.row()
        .cell(step, 1)
        .cell(e1, 1)
        .cell(e5, 1)
        .cell(ed, 1)
        .percent(err, 2)
        .cell(elapsed, 1);
  }
  table.print(std::cout);
  std::cout << "\ntakeaway: 1-2 s steps are indistinguishable from the "
               "0.5 s reference at a fraction of the cost; >= 25 s steps "
               "visibly bias the optima.\n";
  return 0;
}
