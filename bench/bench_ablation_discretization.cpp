// Ablation: the evaluation grid step is *the* numerical knob of the whole
// pipeline (every E_J is an integral functional of a discretized F̃).
// Sweep the step and report the induced error in the single/multiple/
// delayed optima plus model-construction and optimization wall time.
//
// One campaign cell per step on the experiment engine: optima are
// deterministic (and checkpoint/shard-ready). Wall time is inherently
// impure, so it stays *out* of the campaign metrics (the checkpointed
// JSON must honor the byte-identical resume/shard contract) and is
// collected on the side: cells restored from a checkpoint print "-" in
// the timing column, and under a wide pool cells time their concurrent
// execution.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "exp/campaign.hpp"
#include "report/table.hpp"
#include "traces/datasets.hpp"

namespace {
double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  using namespace gridsub;
  bench::print_header("ablation_discretization",
                      "grid-step sensitivity of all strategy optima",
                      "reference = 0.5 s grid");

  const auto trace = traces::make_trace_by_name("2006-IX");
  const std::vector<double> steps = {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0};

  exp::CampaignAxes axes;
  axes.name = "ablation_discretization";
  axes.scenario_axis = "step";
  axes.strategy_axis = "stage";
  for (const double step : steps) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.1fs", step);
    axes.scenario_labels.emplace_back(label);
  }
  axes.strategy_labels = {"tune"};
  axes.root_seed = 20090611;

  std::vector<double> elapsed_ms(steps.size(), -1.0);
  const auto result = bench::run_campaign(
      axes, [&trace, &steps, &elapsed_ms](const exp::CellContext& ctx) {
        const auto t_start = std::chrono::steady_clock::now();
        const auto m = model::DiscretizedLatencyModel::from_trace(
            trace, steps[ctx.scenario]);
        const double e1 =
            core::SingleResubmission(m).optimize().metrics.expectation;
        const double e5 =
            core::MultipleSubmission(m, 5).optimize().metrics.expectation;
        const double ed =
            core::DelayedResubmission(m).optimize().metrics.expectation;
        // Side channel, not a metric: one replication per step, so the
        // scenario index is this cell's slot.
        elapsed_ms[ctx.scenario] = ms_since(t_start);
        return exp::CellMetrics{{"ej_single", e1},
                                {"ej_multi5", e5},
                                {"ej_delayed", ed}};
      });
  if (!result) return 0;  // shard mode: cells are on disk

  const double ref1 = result->mean(0, 0, "ej_single");
  const double ref5 = result->mean(0, 0, "ej_multi5");
  const double refd = result->mean(0, 0, "ej_delayed");
  report::Table table({"step(s)", "E_J single", "E_J multi(b=5)",
                       "E_J delayed", "err vs ref", "build+opt ms"});
  for (std::size_t sc = 0; sc < steps.size(); ++sc) {
    const double e1 = result->mean(sc, 0, "ej_single");
    const double e5 = result->mean(sc, 0, "ej_multi5");
    const double ed = result->mean(sc, 0, "ej_delayed");
    const double err = std::max({std::abs(e1 - ref1) / ref1,
                                 std::abs(e5 - ref5) / ref5,
                                 std::abs(ed - refd) / refd});
    auto& row = table.row()
                    .cell(steps[sc], 1)
                    .cell(e1, 1)
                    .cell(e5, 1)
                    .cell(ed, 1)
                    .percent(err, 2);
    if (elapsed_ms[sc] >= 0.0) {
      row.cell(elapsed_ms[sc], 1);
    } else {
      row.cell(std::string("-"));  // cell restored from a checkpoint
    }
  }
  table.print(std::cout);
  std::cout << "\ntakeaway: 1-2 s steps are indistinguishable from the "
               "0.5 s reference at a fraction of the cost; >= 25 s steps "
               "visibly bias the optima.\n";
  return 0;
}
