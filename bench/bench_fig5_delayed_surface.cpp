// Figure 5: E_J(t0, t∞) surface of the delayed-resubmission strategy on
// 2006-IX. Printed as grid samples (t0, t_inf, E_J) plus the located
// minimum.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/delayed_resubmission.hpp"
#include "parallel/parallel_for.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("fig5_delayed_surface",
                      "Figure 5 (E_J surface over t0, t_inf)");

  const auto m = bench::load_model("2006-IX");
  const core::DelayedResubmission delayed(m);

  constexpr double kLo = 20.0, kHi = 700.0, kStepGrid = 20.0;
  const int n = static_cast<int>((kHi - kLo) / kStepGrid) + 1;
  std::vector<std::vector<double>> surface(n, std::vector<double>(n));
  par::parallel_for(0, n, [&](std::int64_t i) {
    const double t0 = kLo + static_cast<double>(i) * kStepGrid;
    for (int j = 0; j < n; ++j) {
      const double t_inf = kLo + j * kStepGrid;
      surface[i][j] = delayed.feasible(t0, t_inf)
                          ? delayed.expectation(t0, t_inf)
                          : std::nan("");
    }
  });

  std::cout << "# surface samples: t0 t_inf E_J (feasible region "
               "t0 < t_inf <= 2*t0 only)\n";
  for (int i = 0; i < n; i += 2) {
    for (int j = 0; j < n; j += 2) {
      if (!std::isnan(surface[i][j])) {
        std::cout << kLo + i * kStepGrid << ' ' << kLo + j * kStepGrid
                  << ' ' << surface[i][j] << '\n';
      }
    }
  }

  const auto opt = delayed.optimize();
  std::cout << "\nsurface minimum: t0 = " << opt.t0
            << " s, t_inf = " << opt.t_inf
            << " s, E_J = " << opt.metrics.expectation
            << " s (sigma_J = " << opt.metrics.std_deviation << " s)\n";
  std::cout << "paper shape check: the surface has an interior minimum "
               "with E_J below the single-resubmission optimum.\n";
  return 0;
}
