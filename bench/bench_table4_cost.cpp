// Table 4: the cost criterion on 2006-IX — left block: delayed strategy
// per imposed ratio (N∥, min E_J, Δcost); right block: multiple submission
// for growing b up to 100.

#include <iostream>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table4_cost", "Table 4 (delta-cost samples)");

  const auto m = bench::load_model("2006-IX");
  const core::CostModel cost(m);
  std::cout << "baseline (single resubmission): t_inf = "
            << cost.baseline().t_inf
            << " s, E_J = " << cost.baseline().metrics.expectation
            << " s, delta_cost = 1\n\n";

  report::Table left({"N_par", "t_inf/t0", "min E_J", "d_cost"});
  const core::DelayedResubmission& delayed = cost.delayed();
  for (double ratio = 1.1; ratio <= 2.001; ratio += 0.1) {
    const auto opt = delayed.optimize_with_ratio(ratio);
    left.row()
        .cell(opt.n_parallel, 2)
        .cell(ratio, 1)
        .cell(report::seconds(opt.metrics.expectation))
        .cell(cost.delta_cost(opt.n_parallel, opt.metrics.expectation), 2);
  }
  std::cout << "delayed resubmission (per imposed ratio):\n";
  left.print(std::cout);

  report::Table right({"N_par (=b)", "min E_J", "d_cost"});
  for (int b : {2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 40, 60, 80, 100}) {
    const auto e = cost.evaluate_multiple(b);
    right.row()
        .cell(static_cast<long long>(b))
        .cell(report::seconds(e.expectation))
        .cell(e.delta_cost, 1);
  }
  std::cout << "\nmultiple submission (per b):\n";
  right.print(std::cout);

  const auto opt = cost.optimize_delayed_cost();
  std::cout << "\nglobal delta-cost optimum (integer t0, t_inf): t0 = "
            << opt.t0 << " s, t_inf = " << opt.t_inf
            << " s, E_J = " << opt.expectation
            << " s, N_par = " << opt.n_parallel
            << ", delta_cost = " << opt.delta_cost << "\n";
  std::cout << "paper shape check: delayed ratios reach delta_cost < 1 "
               "(less grid load than plain resubmission) while multiple "
               "submission grows beyond 1 roughly linearly in b.\n";
  return 0;
}
