// Table 1: per-dataset mean/sigma of latency R, the censored lower-bound
// mean, and E_J / sigma_J of single resubmission at its optimal timeout,
// with the Delta-sigma column (sigma_J vs sigma_R).

#include <iostream>

#include "bench_util.hpp"
#include "core/single_resubmission.hpp"
#include "report/table.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table1_latency_stats",
                      "Table 1 (mean and standard deviation of R and J)");

  report::Table table({"week", "mean<1e4", "mean with 1e4", "E_J", "sigma_R",
                       "sigma_J", "d_sigma"});
  for (const auto& name : traces::all_dataset_names_with_union()) {
    const auto trace = traces::make_trace_by_name(name);
    const auto stats = trace.stats();
    const auto m = model::DiscretizedLatencyModel::from_trace(trace,
                                                              bench::kStep);
    const core::SingleResubmission single(m);
    const auto opt = single.optimize();
    table.row()
        .cell(name)
        .cell(report::seconds(stats.mean_completed))
        .cell(report::seconds(stats.censored_mean))
        .cell(report::seconds(opt.metrics.expectation))
        .cell(report::seconds(stats.stddev_completed))
        .cell(report::seconds(opt.metrics.std_deviation))
        .percent((opt.metrics.std_deviation - stats.stddev_completed) /
                 stats.stddev_completed, 0);
  }
  table.print(std::cout);
  std::cout << "\npaper shape check: E_J is of the order of mean<1e4 "
               "(outlier impact suppressed) and sigma_J < sigma_R for "
               "almost all weeks.\n";
  return 0;
}
