// Chaos serving throughput (docs/robustness.md): what does the advisor
// stack deliver per second while the standard fault schedule is tearing
// at it — and how much of that traffic degrades?
//
// Setup: a synthetic diurnal scenario warms one planner per key through
// serve::replay_feed under deterministic ingest stalls, with the
// background refresher live and pause faults installed. Then a fixed
// request sequence is pushed through a FaultyTransport (drop / delay /
// duplicate / transient-reply / drop-reply faults at the standard rates)
// into two RequestLoops, while one writer keeps dirtying a single key —
// so the other keys age past the staleness bound and the degraded
// fallback path is genuinely exercised, not idle.
//
// Reported: end-to-end requests/s (wall-clock, machine-dependent), the
// response-status breakdown, the degraded-rate, and the injected-fault
// census. The torn column re-verifies every answer's stamp and must read
// 0 — a correctness gate, not a statistic.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault_injector.hpp"
#include "report/table.hpp"
#include "serve/advisor.hpp"
#include "serve/replay_feed.hpp"
#include "serve/request_loop.hpp"
#include "traces/scenarios.hpp"

namespace {

using namespace gridsub;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kStalenessBound = 8;

/// The standard chaos schedule the robustness docs and the chaos wall
/// quote: every fault class live at modest rates.
fault::FaultScheduleConfig standard_schedule() {
  fault::FaultScheduleConfig c;
  c.seed = 20090611;
  c.drop_request = 0.02;
  c.delay_request = 0.03;
  c.duplicate_request = 0.01;
  c.drop_reply = 0.01;
  c.transient_reply = 0.02;
  c.ingest_stall = 0.01;
  c.refresher_pause = 0.25;
  return c;
}

}  // namespace

int main() {
  bench::print_header(
      "chaos-qps",
      "robustness: advisor serving throughput and degraded-rate under the "
      "standard fault schedule",
      "requests/s is wall-clock and machine-dependent; the torn column is "
      "a correctness gate and must be 0");

  const bool quick = bench::quick_mode();
  fault::FaultInjector injector(standard_schedule());

  // --- warm the service under ingest stalls -------------------------------
  traces::ScenarioConfig scenario;
  scenario.duration = quick ? 14400.0 : 86400.0;
  scenario.base_rate = 0.25;
  scenario.runtime_mean = 600.0;
  const traces::Workload workload =
      traces::make_scenario("diurnal-week", scenario);

  serve::AdvisorConfig config;
  config.planner.window = 200;
  config.planner.min_observations = 60;
  config.planner.refit_interval = 60;
  config.planner.model_step = 20.0;
  config.planner.timeout = 4000.0;
  config.refresh_pending = 128;
  config.staleness_bound = kStalenessBound;
  config.refresh_fault = injector.refresher_hook();
  serve::AdvisorService service(config);
  service.start_refresher();

  serve::ReplayFeedConfig feed;
  feed.ingest_threads = 2;
  feed.fault_hook = injector.ingest_hook();
  const Clock::time_point warm_start = Clock::now();
  const serve::ReplayFeedReport report =
      serve::replay_feed(service, workload, feed);
  const double warm_seconds =
      std::chrono::duration<double>(Clock::now() - warm_start).count();
  std::cout << "warm ingest under stalls: " << report.jobs << " jobs -> "
            << report.keys << " keys in " << warm_seconds << " s ("
            << injector.count(fault::FaultClass::kIngestStall)
            << " stalls injected)\n\n";

  std::set<serve::AdvisorKey> key_set;
  {
    std::size_t index = 0;
    for (const traces::WorkloadJob& job : workload.jobs()) {
      key_set.insert(serve::key_for_job(job, index++, feed));
    }
  }
  const std::vector<serve::AdvisorKey> keys(key_set.begin(), key_set.end());

  // --- serve a fixed request sequence through the faulty transport --------
  // One writer dirties only keys[0], so refresher generations keep
  // advancing while every other key ages toward the staleness bound.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    std::uint64_t tick = 0;
    while (!stop_writer.load(std::memory_order_relaxed)) {
      service.ingest(keys[0], 500.0 + static_cast<double>(tick % 40));
      ++tick;
    }
  });

  const std::uint64_t total_requests = quick ? 20000 : 100000;
  serve::InProcessTransport inner(1024);
  fault::FaultyTransport faulty(inner, injector);
  constexpr std::size_t kLoops = 2;
  std::vector<std::unique_ptr<serve::RequestLoop>> loops;
  for (std::size_t i = 0; i < kLoops; ++i) {
    loops.push_back(std::make_unique<serve::RequestLoop>(service, faulty));
  }

  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t deadline = 0;
  std::uint64_t torn = 0;
  std::thread taker([&] {
    serve::AdvisorResponse r;
    while (inner.take_reply(r)) {
      switch (r.status) {
        case serve::ResponseStatus::kOk:
          ++ok;
          break;
        case serve::ResponseStatus::kDegraded:
          ++degraded;
          break;
        case serve::ResponseStatus::kDeadlineExceeded:
          ++deadline;
          continue;  // no payload to verify
        case serve::ResponseStatus::kInternalError:
          continue;
      }
      if (serve::advice_stamp(r.advice) != r.advice.stamp) ++torn;
    }
  });

  const Clock::time_point serve_start = Clock::now();
  for (auto& loop : loops) loop->start();
  for (std::uint64_t id = 0; id < total_requests; ++id) {
    serve::AdvisorRequest r;
    r.id = id;
    r.key = keys[id % keys.size()];
    if (id % 17 == 0) r.deadline = 2;
    inner.post(r);
  }
  inner.close();
  for (auto& loop : loops) loop->join();
  taker.join();
  const double serve_seconds =
      std::chrono::duration<double>(Clock::now() - serve_start).count();
  stop_writer.store(true, std::memory_order_relaxed);
  writer.join();
  service.stop_refresher();

  std::uint64_t served = 0;
  std::uint64_t lost = 0;
  std::uint64_t retries = 0;
  for (const auto& loop : loops) {
    served += loop->served();
    lost += loop->lost_replies();
    retries += loop->reply_retries();
  }
  const std::uint64_t answered = ok + degraded;
  const double degraded_rate =
      answered == 0 ? 0.0
                    : static_cast<double>(degraded) /
                          static_cast<double>(answered);

  report::Table qps({"requests", "wall (s)", "req/s", "ok", "degraded",
                     "degraded-rate", "deadline", "lost", "torn"});
  qps.row()
      .cell(static_cast<long long>(total_requests))
      .cell(serve_seconds, 3)
      .cell(static_cast<double>(served) / serve_seconds, 0)
      .cell(static_cast<long long>(ok))
      .cell(static_cast<long long>(degraded))
      .cell(degraded_rate, 4)
      .cell(static_cast<long long>(deadline))
      .cell(static_cast<long long>(lost))
      .cell(static_cast<long long>(torn));
  std::cout << "end-to-end serving through the faulty transport (" << kLoops
            << " loops, " << retries << " reply retries):\n";
  qps.print(std::cout);
  std::cout << '\n';

  report::Table census({"fault class", "injected"});
  const fault::FaultClass classes[] = {
      fault::FaultClass::kDropRequest,    fault::FaultClass::kDelayRequest,
      fault::FaultClass::kDuplicateRequest, fault::FaultClass::kDropReply,
      fault::FaultClass::kTransientReply, fault::FaultClass::kIngestStall,
      fault::FaultClass::kRefresherPause,
  };
  for (const fault::FaultClass cls : classes) {
    census.row()
        .cell(std::string(fault::to_string(cls)))
        .cell(static_cast<long long>(injector.count(cls)));
  }
  std::cout << "injected-fault census (seed "
            << standard_schedule().seed << "; same seed, same faults):\n";
  census.print(std::cout);

  if (torn != 0) {
    std::cerr << "FAIL: " << torn << " torn reads detected\n";
    return 1;
  }
  return 0;
}
