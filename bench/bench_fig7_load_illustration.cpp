// Figure 7: the load-accounting illustration behind the cost criterion —
// a multiple-submission strategy that speeds a job up enough can *reduce*
// total infrastructure load. The paper draws the schematic; here we compute
// the actual job-seconds on 2006-IX for b = 1 vs b = 2..5 and report the
// time-gain factor vs the duplication factor.

#include <iostream>

#include "bench_util.hpp"
#include "core/multiple_submission.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header(
      "fig7_load_illustration",
      "Figure 7 (when duplication reduces total load)",
      "the schematic is realized as measured job-seconds per task");

  const auto m = bench::load_model("2006-IX");
  const auto base = core::MultipleSubmission(m, 1).optimize();
  const double base_load = base.metrics.expectation;  // 1 copy * E_J

  report::Table table({"b", "E_J", "gain factor", "job-seconds/task",
                       "load vs b=1"});
  table.row()
      .cell(1LL)
      .cell(report::seconds(base.metrics.expectation))
      .cell(1.0, 2)
      .cell(base_load, 0)
      .percent(0.0, 1);
  for (int b = 2; b <= 5; ++b) {
    const auto opt = core::MultipleSubmission(m, b).optimize();
    // All b copies occupy the system until the first start: N∥ = b.
    const double load = b * opt.metrics.expectation;
    table.row()
        .cell(static_cast<long long>(b))
        .cell(report::seconds(opt.metrics.expectation))
        .cell(base.metrics.expectation / opt.metrics.expectation, 2)
        .cell(load, 0)
        .percent((load - base_load) / base_load, 1);
  }
  table.print(std::cout);
  std::cout
      << "\npaper shape check: duplication reduces total load only when "
         "the time-gain factor exceeds b (the paper's T/4 vs T/2 sketch); "
         "with realistic latency tails the gain factor stays below b, which "
         "is exactly why the paper introduces the delayed strategy.\n";
  return 0;
}
