// Table 3: delayed resubmission with the ratio t∞/t0 imposed — for each
// ratio in {1.1 .. 2.0}, the minimizing (t0, t∞), minimal E_J, N∥ and the
// improvement over single resubmission (2006-IX).

#include <iostream>

#include "bench_util.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/single_resubmission.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table3_delayed_ratio",
                      "Table 3 (delayed strategy per imposed ratio)");

  const auto m = bench::load_model("2006-IX");
  const core::DelayedResubmission delayed(m);
  const core::SingleResubmission single(m);
  const double baseline = single.optimize().metrics.expectation;
  std::cout << "single-resubmission baseline E_J = " << baseline << " s\n\n";

  report::Table table({"t_inf/t0", "N_par", "best t_inf", "best t0",
                       "min E_J", "d(100%)"});
  for (double ratio = 1.1; ratio <= 2.001; ratio += 0.1) {
    const auto opt = delayed.optimize_with_ratio(ratio);
    table.row()
        .cell(ratio, 1)
        .cell(opt.n_parallel, 2)
        .cell(report::seconds(opt.t_inf))
        .cell(report::seconds(opt.t0))
        .cell(report::seconds(opt.metrics.expectation))
        .percent((opt.metrics.expectation - baseline) / baseline, 1);
  }
  table.print(std::cout);
  std::cout << "\npaper shape check: every ratio row beats the single-"
               "resubmission baseline; N_par stays in [1, ~1.6].\n";
  return 0;
}
