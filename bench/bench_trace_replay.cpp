// Trace-replay experiment: the three strategy families under realistic
// non-stationary load.
//
// The paper evaluates strategies against per-week latency distributions
// and concludes (§7) that parameters tuned on one week stay near-optimal
// later. That only holds if performance is robust to *non-stationary*
// load, which a stationary Poisson background cannot probe. Here each
// strategy family runs on the DES grid while a recorded workload is
// replayed as the background traffic: a diurnal/weekend cycle, a burst
// week, and an outage-backlog week, all normalized to the same
// time-averaged rate as the stationary control so only the load *shape*
// differs. Fully seeded: output is bit-reproducible run to run.

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "sim/grid.hpp"
#include "sim/strategy_client.hpp"
#include "traces/scenarios.hpp"

namespace {

using namespace gridsub;

struct StrategyCase {
  std::string label;
  sim::StrategySpec spec;
};

std::vector<StrategyCase> strategy_cases() {
  std::vector<StrategyCase> cases;
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kSingleResubmission;
    s.t_inf = 1500.0;
    cases.push_back({"single(t_inf=1500)", s});
  }
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kMultipleSubmission;
    s.b = 3;
    s.t_inf = 1500.0;
    cases.push_back({"multiple(b=3,t_inf=1500)", s});
  }
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kDelayedResubmission;
    s.t0 = 900.0;
    s.t_inf = 1500.0;
    cases.push_back({"delayed(t0=900,t_inf=1500)", s});
  }
  return cases;
}

struct RunResult {
  double mean_j = 0.0;
  double mean_subs = 0.0;
  std::size_t tasks_done = 0;
};

RunResult run_case(std::size_t scenario_index,
                   const traces::Workload& workload,
                   const sim::StrategySpec& spec) {
  sim::GridConfig config = sim::GridConfig::egee_like();
  // The replayed workload *is* the background traffic; silence the
  // built-in Poisson source so the load shape comes from the trace alone.
  config.background.arrival_rate = 0.0;
  // Platform-independent seed derivation (no std::hash: its value is
  // implementation-defined and would break bit-reproducibility).
  config.seed = 20090611 + 1000003 * static_cast<std::uint64_t>(scenario_index);
  sim::GridSimulation grid(config);
  grid.attach_replay(workload);
  // Let the morning of day 0 fill the queues before measuring.
  grid.warm_up(6.0 * 3600.0);

  // More tasks than a week can hold: the client stays active from warm-up
  // to the horizon, so every load regime of the scenario is sampled.
  sim::StrategyClient client(grid, spec, /*n_tasks=*/100000);
  client.start();
  grid.simulator().run_until(workload.duration());

  RunResult r;
  r.mean_j = client.mean_latency();
  r.mean_subs = client.mean_submissions();
  r.tasks_done = client.outcomes().size();
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "trace_replay",
      "paper §7 robustness: strategies under non-stationary replayed load",
      "DES grid, one week per scenario, equal time-averaged rate");

  traces::ScenarioConfig scen;
  // ~74% average utilization of the egee_like grid (896 slots, 2200 s mean
  // runtime): the stationary control is stable, so any degradation under
  // the other shapes is attributable to non-stationarity, not saturation.
  scen.base_rate = 0.30;
  scen.seed = 20090611;

  const auto names = traces::replay_scenario_names();
  std::map<std::string, traces::Workload> workloads;
  report::Table shape({"scenario", "jobs", "mean rate (1/s)",
                       "peak hourly rate", "burstiness"});
  for (const auto& name : names) {
    workloads.emplace(name, traces::make_scenario(name, scen));
    const auto stats = workloads.at(name).stats();
    shape.row()
        .cell(name)
        .cell(static_cast<long long>(stats.jobs))
        .cell(stats.mean_rate, 4)
        .cell(stats.peak_hourly_rate, 4)
        .cell(stats.burstiness, 2);
  }
  std::cout << "replayed workload shapes (same average load, different "
               "distribution over the week):\n";
  shape.print(std::cout);
  std::cout << "\n";

  const std::string baseline = names.front();  // stationary-week control
  for (const auto& sc : strategy_cases()) {
    report::Table table({"scenario", "tasks done", "mean J (s)",
                         "mean subs/task", "J vs stationary"});
    std::map<std::string, RunResult> results;
    for (std::size_t i = 0; i < names.size(); ++i) {
      results[names[i]] = run_case(i, workloads.at(names[i]), sc.spec);
    }
    const double base_j = results.at(baseline).mean_j;
    for (const auto& name : names) {
      const auto& r = results.at(name);
      table.row()
          .cell(name)
          .cell(static_cast<long long>(r.tasks_done))
          .cell(r.mean_j, 1)
          .cell(r.mean_subs, 2)
          .cell(base_j > 0.0 ? r.mean_j / base_j : 0.0, 3);
    }
    std::cout << "strategy " << sc.label << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "takeaway: with the weekly job mass held fixed, diurnal "
               "peaks, bursts, and outage backlogs inflate E_J relative to "
               "the stationary control — the regime the paper's cross-week "
               "tuning claim must survive. Timeout-based resubmission "
               "degrades most when load concentrates (burst/outage weeks); "
               "multiple submission buys back latency at the cost of extra "
               "broker traffic, as in the stationary experiments.\n";
  return 0;
}
