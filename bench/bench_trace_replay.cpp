// Trace-replay experiment: the three strategy families under realistic
// non-stationary load.
//
// The paper evaluates strategies against per-week latency distributions
// and concludes (§7) that parameters tuned on one week stay near-optimal
// later. That only holds if performance is robust to *non-stationary*
// load, which a stationary Poisson background cannot probe. Each strategy
// family runs on the DES grid while a recorded workload is replayed as the
// background traffic: a diurnal/weekend cycle, a burst week, and an
// outage-backlog week, all normalized to the same time-averaged rate as
// the stationary control so only the load *shape* differs.
//
// The (scenario × strategy × replication) sweep runs on the campaign
// engine (src/exp): cells are sharded across the thread pool with
// per-cell seeds split from the root seed, so the output is
// bit-reproducible at any thread count.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/experiment.hpp"
#include "report/table.hpp"
#include "traces/scenarios.hpp"

namespace {

using namespace gridsub;

std::vector<exp::StrategyCase> strategy_cases() {
  std::vector<exp::StrategyCase> cases;
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kSingleResubmission;
    s.t_inf = 1500.0;
    cases.push_back({"single(t_inf=1500)", s});
  }
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kMultipleSubmission;
    s.b = 3;
    s.t_inf = 1500.0;
    cases.push_back({"multiple(b=3,t_inf=1500)", s});
  }
  {
    sim::StrategySpec s;
    s.kind = core::StrategyKind::kDelayedResubmission;
    s.t0 = 900.0;
    s.t_inf = 1500.0;
    cases.push_back({"delayed(t0=900,t_inf=1500)", s});
  }
  return cases;
}

}  // namespace

int main() {
  bench::print_header(
      "trace_replay",
      "paper §7 robustness: strategies under non-stationary replayed load",
      "DES grid, one week per scenario, equal time-averaged rate, "
      "4 replications per cell via the campaign engine");

  traces::ScenarioConfig scen;
  // ~74% average utilization of the egee_like grid (896 slots, 2200 s mean
  // runtime): the stationary control is stable, so any degradation under
  // the other shapes is attributable to non-stationarity, not saturation.
  scen.base_rate = 0.30;
  scen.seed = 20090611;

  exp::ExperimentSpec spec;
  spec.name = "trace_replay";
  spec.strategies = strategy_cases();
  spec.replications = 4;
  spec.root_seed = 20090611;
  spec.clients.warm_up = 6.0 * 3600.0;  // let day 0's morning fill queues

  report::Table shape({"scenario", "jobs", "mean rate (1/s)",
                       "peak hourly rate", "burstiness"});
  for (const auto& name : traces::replay_scenario_names()) {
    spec.scenarios.push_back(bench::replay_scenario(name, scen));
    const auto stats = spec.scenarios.back().workload->stats();
    shape.row()
        .cell(name)
        .cell(static_cast<long long>(stats.jobs))
        .cell(stats.mean_rate, 4)
        .cell(stats.peak_hourly_rate, 4)
        .cell(stats.burstiness, 2);
  }
  std::cout << "replayed workload shapes (same average load, different "
               "distribution over the week):\n";
  shape.print(std::cout);
  std::cout << "\n";

  const auto result = bench::run_campaign_streamed(spec);
  if (!result) return 0;  // shard mode: cells are on disk

  for (std::size_t s = 0; s < spec.strategies.size(); ++s) {
    report::Table table({"scenario", "tasks done", "mean J (s)", "+/-",
                         "mean subs/task", "J vs stationary"});
    const double base_j = result->mean(0, s, "mean_J");
    for (std::size_t sc = 0; sc < spec.scenarios.size(); ++sc) {
      table.row()
          .cell(spec.scenarios[sc].label)
          .cell(static_cast<long long>(result->mean(sc, s, "tasks_done")))
          .cell(result->mean(sc, s, "mean_J"), 1)
          .cell(result->sem(sc, s, "mean_J"), 1)
          .cell(result->mean(sc, s, "mean_subs"), 2)
          .cell(base_j > 0.0 ? result->mean(sc, s, "mean_J") / base_j : 0.0,
                3);
    }
    std::cout << "strategy " << spec.strategies[s].label << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "takeaway: with the weekly job mass held fixed, diurnal "
               "peaks, bursts, and outage backlogs inflate E_J relative to "
               "the stationary control — the regime the paper's cross-week "
               "tuning claim must survive. Timeout-based resubmission "
               "degrades most when load concentrates (burst/outage weeks); "
               "multiple submission buys back latency at the cost of extra "
               "broker traffic, as in the stationary experiments.\n";
  return 0;
}
