// Future-work experiment (paper §8): "the impact of all grid users
// exploiting the same strategy can be simulated in a controlled
// environment". Many concurrent clients all adopt multiple submission with
// the same b on the DES grid; we measure how the latency they experience
// and the broker load inflate as b grows — the administrators' concern
// quantified.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "sim/grid.hpp"
#include "sim/strategy_client.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("des_feedback",
                      "paper §8 future work: everyone adopts the strategy",
                      "DES grid, 24 concurrent clients, 40 tasks each");

  constexpr int kClients = 24;
  constexpr std::size_t kTasksPerClient = 40;

  report::Table table({"b", "mean J (s)", "mean subs/task",
                       "jobs submitted", "jobs canceled", "cancel frac",
                       "mean queue wait (s)"});
  for (int b : {1, 2, 3, 5, 8}) {
    sim::GridConfig config = sim::GridConfig::egee_like();
    config.background.arrival_rate = 0.35;
    sim::GridSimulation grid(config);
    grid.warm_up(30000.0);

    std::vector<std::unique_ptr<sim::StrategyClient>> clients;
    for (int c = 0; c < kClients; ++c) {
      sim::StrategySpec spec;
      spec.kind = b == 1 ? core::StrategyKind::kSingleResubmission
                         : core::StrategyKind::kMultipleSubmission;
      spec.b = b;
      spec.t_inf = 1500.0;
      clients.push_back(std::make_unique<sim::StrategyClient>(
          grid, spec, kTasksPerClient));
    }
    const auto before = grid.metrics();
    for (auto& c : clients) c->start();
    grid.simulator().run_until(grid.simulator().now() + 5e7);

    double mean_j = 0.0, mean_subs = 0.0;
    std::size_t done = 0;
    for (const auto& c : clients) {
      mean_j += c->mean_latency() * static_cast<double>(c->outcomes().size());
      mean_subs +=
          c->mean_submissions() * static_cast<double>(c->outcomes().size());
      done += c->outcomes().size();
    }
    mean_j /= static_cast<double>(done);
    mean_subs /= static_cast<double>(done);
    const auto& after = grid.metrics();
    table.row()
        .cell(static_cast<long long>(b))
        .cell(mean_j, 1)
        .cell(mean_subs, 2)
        .cell(static_cast<long long>(after.jobs_submitted -
                                     before.jobs_submitted))
        .cell(static_cast<long long>(after.jobs_canceled -
                                     before.jobs_canceled))
        .cell(after.cancel_fraction(), 3)
        .cell(after.mean_queue_wait(), 1);
  }
  table.print(std::cout);
  std::cout << "\ntakeaway: individual gains persist at moderate b, but "
               "broker traffic (submissions + cancellations) grows ~b "
               "and queue waits creep upward — collective adoption erodes "
               "the benefit, matching Casanova's bottleneck observation "
               "cited by the paper.\n";
  return 0;
}
