// Future-work experiment (paper §8): "the impact of all grid users
// exploiting the same strategy can be simulated in a controlled
// environment". Many concurrent clients all adopt multiple submission with
// the same b on the DES grid; we measure how the latency they experience
// and the broker load inflate as b grows — the administrators' concern
// quantified.
//
// The b sweep is one campaign on the experiment engine: a single
// stationary scenario, one strategy per b, 24 clients per cell.

#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "exp/experiment.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("des_feedback",
                      "paper §8 future work: everyone adopts the strategy",
                      "DES grid, 24 concurrent clients, 40 tasks each");

  exp::ExperimentSpec spec;
  spec.name = "des_feedback";
  {
    exp::ScenarioCase sc;
    sc.label = "egee(bg=0.35)";
    sc.grid = sim::GridConfig::egee_like();
    sc.grid.background.arrival_rate = 0.35;
    spec.scenarios.push_back(std::move(sc));
  }
  for (const int b : {1, 2, 3, 5, 8}) {
    sim::StrategySpec s;
    s.kind = b == 1 ? core::StrategyKind::kSingleResubmission
                    : core::StrategyKind::kMultipleSubmission;
    s.b = b;
    s.t_inf = 1500.0;
    spec.strategies.push_back({"b=" + std::to_string(b), s});
  }
  spec.clients.clients_per_cell = 24;
  spec.clients.tasks_per_client = 40;
  spec.clients.warm_up = 30000.0;
  spec.clients.horizon = 5e7;  // generous: all 960 tasks finish well before
  spec.replications = 1;       // each cell is already a 24-client average
  spec.root_seed = 20090611;

  const auto result = bench::run_campaign_streamed(spec);
  if (!result) return 0;  // shard mode: cells are on disk

  report::Table table({"b", "mean J (s)", "mean subs/task", "jobs submitted",
                       "jobs canceled", "cancel frac",
                       "mean queue wait (s)"});
  for (std::size_t s = 0; s < spec.strategies.size(); ++s) {
    table.row()
        .cell(spec.strategies[s].label)
        .cell(result->mean(0, s, "mean_J"), 1)
        .cell(result->mean(0, s, "mean_subs"), 2)
        .cell(static_cast<long long>(result->mean(0, s, "jobs_submitted")))
        .cell(static_cast<long long>(result->mean(0, s, "jobs_canceled")))
        .cell(result->mean(0, s, "cancel_frac"), 3)
        .cell(result->mean(0, s, "mean_queue_wait"), 1);
  }
  table.print(std::cout);
  std::cout << "\ntakeaway: individual gains persist at moderate b, but "
               "broker traffic (submissions + cancellations) grows ~b "
               "and queue waits creep upward — collective adoption erodes "
               "the benefit, matching Casanova's bottleneck observation "
               "cited by the paper.\n";
  return 0;
}
