// Cross-week tuning, end-to-end in simulation (the paper's §7 / Table 6
// claim driven through the DES instead of the analytic model alone).
//
// 12 synthetic "scenario weeks" stand in for the paper's 12 EGEE trace
// weeks: each borrows a paper dataset's label, cycles through the
// non-stationary load shapes (stationary/diurnal/burst/outage) and scales
// its arrival rate by the week's Table 1 latency regime, so consecutive
// weeks genuinely differ. For every week N the full practical pipeline
// runs inside the simulator:
//
//   1. fit   — a probe campaign (paper §3.2) measures week N's latency
//              distribution under its replayed workload; F̃ is fitted from
//              the collected trace;
//   2. tune  — (t0, t∞) of delayed resubmission, the single-resubmission
//              t∞, and the multiple-submission b are optimized on the
//              fitted model;
//   3. apply — week N+1 replays its own workload while strategy clients
//              run (a) naive submission, (b) week N's tuned parameters,
//              and (c) week N+1's own tuned parameters (the unknowable
//              oracle), ≥16 replications per cell on the campaign engine.
//
// Reported: the tuned-vs-naive E_J gap (what tuning buys) and the
// week-ahead transfer penalty tuned(N) vs tuned(N+1) on week N+1 (what
// tuning on stale data costs) — the paper's claim is that the first is
// large and the second is small.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "exp/experiment.hpp"
#include "model/discretized.hpp"
#include "report/table.hpp"
#include "sim/probe_client.hpp"
#include "stats/rng.hpp"
#include "traces/datasets.hpp"
#include "traces/scenarios.hpp"

namespace {

using namespace gridsub;

constexpr std::uint64_t kRootSeed = 20090611;
constexpr double kBaseRate = 0.30;  // ~74% utilization at factor 1.0
constexpr double kWarmUp = 6.0 * 3600.0;
constexpr double kNaiveTimeout = 10000.0;  // the paper's outlier horizon
/// Parallel-copy budget when tuning multiple submission (the planner's
/// kMinLatency objective): E_J always improves with more copies, so the
/// tuned b rides the budget and what transfers week to week is its
/// latency-optimal timeout.
constexpr int kMultipleBudget = 3;

/// Parameters tuned on one week's fitted latency model.
struct TunedParams {
  double t0 = 0.0;
  double t_inf = 0.0;        // delayed strategy
  double t_inf_single = 0.0;
  int b = 1;
  double t_inf_multiple = 0.0;
  double rho = 0.0;    // fitted outlier mass
  double probes = 0.0;
};

/// The 12 scenario weeks: paper labels, cycled load shapes, rates scaled
/// by each week's Table 1 latency regime (heavier weeks are busier).
std::vector<exp::ScenarioCase> make_weeks() {
  const auto& datasets = traces::all_datasets();
  double mean_regime = 0.0;
  for (const auto& d : datasets) mean_regime += d.target_mean;
  mean_regime /= static_cast<double>(datasets.size());

  const auto shapes = traces::replay_scenario_names();
  std::vector<exp::ScenarioCase> weeks;
  weeks.reserve(datasets.size());
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const double factor = std::clamp(
        datasets[i].target_mean / mean_regime, 0.85, 1.15);
    traces::ScenarioConfig scen;
    scen.base_rate = kBaseRate * factor;
    std::uint64_t s = kRootSeed ^ (0xC0FFEEull * (i + 1));
    scen.seed = stats::splitmix64(s);
    auto sc = bench::replay_scenario(shapes[i % shapes.size()], scen);
    sc.label = datasets[i].name;
    weeks.push_back(std::move(sc));
  }
  return weeks;
}

/// Stage 1+2 for one week: probe its replayed grid, fit F̃, tune.
TunedParams fit_and_tune(const exp::ScenarioCase& week, std::uint64_t seed) {
  sim::GridConfig config = week.grid;
  config.seed = seed;
  sim::GridSimulation grid(config);
  grid.attach_replay(*week.workload, week.replay);
  grid.warm_up(kWarmUp);

  sim::ProbeCampaignConfig probe;
  probe.n_probes = 50000;  // effectively "probe until the week ends"
  probe.concurrent = 10;
  probe.timeout = kNaiveTimeout;
  sim::ProbeClient probes(grid, probe, week.label + "-probes");
  probes.start();
  grid.simulator().run_until(week.workload->duration());

  const auto model =
      model::DiscretizedLatencyModel::from_trace(probes.trace(), 1.0);
  const core::CostModel cost(model);

  TunedParams p;
  const auto delayed = cost.optimize_delayed_cost();
  p.t0 = delayed.t0;
  p.t_inf = delayed.t_inf;
  p.t_inf_single = cost.baseline().t_inf;
  const auto single_copy = cost.evaluate_multiple(1);
  double best_ej = single_copy.expectation;
  p.t_inf_multiple = single_copy.t_inf;
  for (int b = 2; b <= kMultipleBudget; ++b) {
    const auto e = cost.evaluate_multiple(b);
    if (e.expectation < best_ej) {
      best_ej = e.expectation;
      p.b = b;
      p.t_inf_multiple = e.t_inf;
    }
  }
  p.rho = model.outlier_ratio();
  p.probes = static_cast<double>(probes.trace().size());
  return p;
}

}  // namespace

int main() {
  const std::size_t reps = bench::quick_mode() ? 4 : 16;
  bench::print_header(
      "crossweek_replay",
      "paper §7 / Table 6 end-to-end: fit + tune on week N, deploy on "
      "week N+1, all in simulation",
      "12 scenario weeks x {naive, tuned(prev), multiple(prev), "
      "tuned(own)} x " + std::to_string(reps) +
          " replications on the campaign engine");

  const std::vector<exp::ScenarioCase> weeks = make_weeks();
  const std::size_t n_weeks = weeks.size();

  // ---- Stage 1+2: per-week probe campaign -> F̃ fit -> tuned params ----
  // The fit evaluator is pure in the cell context: every parameter the
  // evaluation campaign needs travels in the stage metrics, so the stage
  // checkpoints/resumes like any campaign and sibling shard processes
  // load the published .stage file instead of re-probing 12 weeks.
  exp::CampaignAxes fit_axes;
  fit_axes.name = "crossweek_fit";
  fit_axes.scenario_axis = "week";
  fit_axes.strategy_axis = "stage";
  for (const auto& w : weeks) fit_axes.scenario_labels.push_back(w.label);
  fit_axes.strategy_labels = {"fit+tune"};
  fit_axes.root_seed = kRootSeed;
  // The stage identity names the inputs the fit depends on: the week
  // roster plus the probe/tuning constants. Changing any of them retires
  // a previously published stage instead of silently reusing it.
  std::string fit_identity = "weeks=";
  for (const auto& w : weeks) {
    fit_identity += w.label + ":" + w.workload->name() + ",";
  }
  fit_identity += ";base_rate=" + std::to_string(kBaseRate) +
                  ";budget=" + std::to_string(kMultipleBudget);
  const exp::StageResult fit = bench::run_stage_campaign(
      fit_axes,
      [&](const exp::CellContext& ctx) {
        const TunedParams p = fit_and_tune(weeks[ctx.scenario], ctx.seed);
        return exp::CellMetrics{{"probes", p.probes}, {"rho", p.rho},
                                {"t0", p.t0},         {"t_inf", p.t_inf},
                                {"t_inf_single", p.t_inf_single},
                                {"b", static_cast<double>(p.b)},
                                {"t_inf_multiple", p.t_inf_multiple}};
      },
      fit_identity);
  std::vector<TunedParams> tuned(n_weeks);
  for (const exp::CellResult& cell : fit.result.cells()) {
    TunedParams& p = tuned[cell.context.scenario];
    p.t0 = bench::cell_metric(cell, "t0");
    p.t_inf = bench::cell_metric(cell, "t_inf");
    p.t_inf_single = bench::cell_metric(cell, "t_inf_single");
    p.b = static_cast<int>(bench::cell_metric(cell, "b"));
    p.t_inf_multiple = bench::cell_metric(cell, "t_inf_multiple");
    p.rho = bench::cell_metric(cell, "rho");
    p.probes = bench::cell_metric(cell, "probes");
  }

  report::Table tune_table({"week", "shape", "rate (1/s)", "probes", "rho",
                            "tuned t0", "tuned t_inf", "tuned b"});
  for (std::size_t i = 0; i < n_weeks; ++i) {
    const auto stats = weeks[i].workload->stats();
    tune_table.row()
        .cell(weeks[i].label)
        .cell(weeks[i].workload->name())
        .cell(stats.mean_rate, 3)
        .cell(static_cast<long long>(tuned[i].probes))
        .cell(tuned[i].rho, 3)
        .cell(tuned[i].t0, 0)
        .cell(tuned[i].t_inf, 0)
        .cell(static_cast<long long>(tuned[i].b));
  }
  std::cout << "per-week probe-fitted models and tuned parameters:\n";
  tune_table.print(std::cout);
  std::cout << "\n";

  // ---- Stage 3: deploy on the *next* week, in simulation --------------
  // Strategy axis per target week: naive submission, last week's tuned
  // parameters (the deployable policy), and the week's own tuned optimum
  // (the unknowable oracle the penalty is measured against). Week 1's
  // "previous" wraps to the last week so the matrix stays rectangular.
  exp::CampaignAxes eval_axes;
  eval_axes.name = "crossweek_eval";
  eval_axes.scenario_axis = "week";
  eval_axes.strategy_axis = "policy";
  for (const auto& w : weeks) eval_axes.scenario_labels.push_back(w.label);
  eval_axes.strategy_labels = {"naive", "delayed(prev)", "multiple(prev)",
                               "delayed(own)"};
  eval_axes.replications = reps;
  eval_axes.root_seed = kRootSeed + 1;

  exp::ClientConfig clients;
  clients.warm_up = kWarmUp;

  const auto result =
      bench::run_campaign_streamed(eval_axes, [&](const exp::CellContext& ctx) {
        const std::size_t prev = (ctx.scenario + n_weeks - 1) % n_weeks;
        sim::StrategySpec spec;
        switch (ctx.strategy) {
          case 0:  // naive: resubmit only at the outlier horizon
            spec.kind = core::StrategyKind::kSingleResubmission;
            spec.t_inf = kNaiveTimeout;
            break;
          case 1:  // tuned on last week, deployed this week
            spec.kind = core::StrategyKind::kDelayedResubmission;
            spec.t0 = tuned[prev].t0;
            spec.t_inf = tuned[prev].t_inf;
            break;
          case 2:  // multiple submission tuned on last week
            spec.kind = core::StrategyKind::kMultipleSubmission;
            spec.b = tuned[prev].b;
            spec.t_inf = tuned[prev].t_inf_multiple;
            break;
          default:  // oracle: this week's own tuned parameters
            spec.kind = core::StrategyKind::kDelayedResubmission;
            spec.t0 = tuned[ctx.scenario].t0;
            spec.t_inf = tuned[ctx.scenario].t_inf;
        }
        return exp::run_strategy_cell(weeks[ctx.scenario], spec, clients,
                                      ctx.seed);
      });
  if (!result) return 0;  // shard mode: cells are on disk

  report::Table table({"week", "naive J", "delayed(prev) J", "+/-",
                       "multiple(prev) J", "delayed(own) J",
                       "gain vs naive", "transfer penalty"});
  double gain_sum = 0.0, penalty_sum = 0.0, penalty_max = 0.0;
  for (std::size_t w = 0; w < n_weeks; ++w) {
    const double naive_j = result->mean(w, 0, "mean_J");
    const double prev_j = result->mean(w, 1, "mean_J");
    const double multi_j = result->mean(w, 2, "mean_J");
    const double own_j = result->mean(w, 3, "mean_J");
    const double gain = naive_j > 0.0 ? 1.0 - prev_j / naive_j : 0.0;
    const double penalty = own_j > 0.0 ? prev_j / own_j - 1.0 : 0.0;
    gain_sum += gain;
    penalty_sum += penalty;
    penalty_max = std::max(penalty_max, penalty);
    table.row()
        .cell(weeks[w].label)
        .cell(naive_j, 1)
        .cell(prev_j, 1)
        .cell(result->sem(w, 1, "mean_J"), 1)
        .cell(multi_j, 1)
        .cell(own_j, 1)
        .percent(gain)
        .percent(penalty);
  }
  std::cout << "deployed on week N (params fitted on week N-1; week "
            << weeks.front().label << " wraps to " << weeks.back().label
            << "):\n";
  table.print(std::cout);

  const auto n = static_cast<double>(n_weeks);
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "\nsummary: mean tuned-vs-naive E_J gain %.1f%%, mean "
                "week-ahead transfer penalty %.1f%% (max %.1f%%).\n",
                100.0 * gain_sum / n, 100.0 * penalty_sum / n,
                100.0 * penalty_max);
  std::cout << summary;
  std::cout << "takeaway: tuning on last week's probes captures most of the "
               "achievable E_J reduction even though the load shape and "
               "rate change week to week — the paper's week-ahead tuning "
               "claim, reproduced end-to-end in the DES instead of on the "
               "analytic model.\n";
  return 0;
}
