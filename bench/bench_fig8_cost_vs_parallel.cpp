// Figure 8: Δcost vs mean number of parallel copies for the delayed and
// multiple-submission strategies (2006-IX).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "report/series.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("fig8_cost_vs_parallel",
                      "Figure 8 (delta-cost vs parallel copies)");

  const auto m = bench::load_model("2006-IX");
  const core::CostModel cost(m);

  std::vector<double> dx, dy;
  for (double ratio = 1.02; ratio <= 2.001; ratio += 0.02) {
    const auto opt = cost.delayed().optimize_with_ratio(ratio);
    dx.push_back(opt.n_parallel);
    dy.push_back(cost.delta_cost(opt.n_parallel, opt.metrics.expectation));
  }
  std::vector<double> mx, my;
  for (int b = 1; b <= 5; ++b) {
    const auto e = b == 1 ? cost.evaluate_single() : cost.evaluate_multiple(b);
    mx.push_back(static_cast<double>(b));
    my.push_back(e.delta_cost);
  }

  report::Figure fig("Figure 8: delta-cost vs mean parallel copies",
                     "nb. of jobs in parallel", "delta_cost");
  fig.add("delayed submission strategy", std::move(dx), std::move(dy));
  fig.add("multiple submissions strategy", std::move(mx), std::move(my));
  fig.print(std::cout);

  const auto opt = cost.optimize_delayed_cost();
  std::cout << "\nminimum of the delayed curve: delta_cost = "
            << opt.delta_cost << " at N_par = " << opt.n_parallel
            << " (t0 = " << opt.t0 << " s, t_inf = " << opt.t_inf << " s)\n";
  std::cout << "paper shape check: the delayed curve dips below 1 for "
               "N_par < 2 then rises; integer multiple-submission points "
               "increase monotonically above 1.\n";
  return 0;
}
