// Extension of Table 6: the week-ahead transfer as a *sequential* process.
//
// The paper evaluates parameters tuned on week w-1 against week w for one
// pair of weeks at a time. Here an online planner replays the 2007-2008
// weeks in order, carrying its sliding window across week boundaries, and
// at the end of each week we score its current delayed-resubmission
// parameters against that week's oracle (a posteriori optimum) — the
// regret a real client would have paid. The drift statistic is reported
// at each boundary.

// GCC 12 at -O2 misattributes impossible sizes/offsets to the inlined
// std::string copies in the per-week label building below and fails the
// -Werror build with a bogus -Wrestrict (the upstream gcc bug 105651
// family). The code is plain std::string concatenation; silence the
// false positive for this translation unit only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <cmath>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "online/online_planner.hpp"
#include "report/table.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  bench::print_header(
      "ext_online",
      "extension of Table 6: sequential week-ahead transfer (online "
      "planner regret)",
      "window 600 probes, refit every 50, min-cost objective");

  const std::vector<std::string> weeks = {
      "2007-36", "2007-37", "2007-38", "2007-39", "2007-50", "2007-51",
      "2007-52", "2007-53", "2008-01", "2008-02", "2008-03"};

  online::OnlinePlannerConfig oc;
  oc.window = 600;
  oc.min_observations = 150;
  oc.refit_interval = 50;
  oc.planner.objective = core::PlannerOptions::Objective::kMinCost;
  online::OnlinePlanner planner(oc);

  report::Table table({"week", "drift KS", "carried (t0,t_inf)",
                       "carried dcost", "oracle dcost", "regret"});

  for (std::size_t w = 0; w < weeks.size(); ++w) {
    // Score the parameters carried from previous weeks on THIS week's
    // model, before the planner sees any of this week's data.
    const auto oracle_model = bench::load_model(weeks[w], 2.0);
    const core::StrategyPlanner oracle(oracle_model);
    const auto oracle_rec = oracle.recommend(oc.planner);

    std::string carried = "(cold start)";
    double carried_cost = std::numeric_limits<double>::quiet_NaN();
    if (planner.ready()) {
      const auto& rec = planner.current();
      if (rec.choice.kind == core::StrategyKind::kDelayedResubmission) {
        carried_cost =
            oracle.evaluate_delayed_params(rec.choice.t0, rec.choice.t_inf)
                .delta_cost;
        carried = "(" + std::to_string(static_cast<int>(rec.choice.t0)) +
                  ", " + std::to_string(static_cast<int>(rec.choice.t_inf)) +
                  ")";
      } else {
        // Single resubmission carried over: dcost 1 by definition.
        carried_cost = 1.0;
        carried = "single";
      }
    }

    const double drift_before = planner.drift_statistic();

    // Now replay this week into the planner.
    const auto trace = traces::make_trace_by_name(weeks[w]);
    for (const auto& r : trace.records()) {
      if (r.status == traces::ProbeStatus::kCompleted) {
        planner.observe_completed(r.latency);
      } else {
        planner.observe_outlier();
      }
    }

    auto& row = table.row().cell(weeks[w]).cell(drift_before, 3).cell(
        carried);
    if (std::isnan(carried_cost)) {
      row.cell("-").cell(oracle_rec.choice.delta_cost, 3).cell("-");
    } else {
      row.cell(carried_cost, 3)
          .cell(oracle_rec.choice.delta_cost, 3)
          .percent(carried_cost / oracle_rec.choice.delta_cost - 1.0);
    }
  }
  table.print(std::cout);
  std::cout
      << "\nexpected shape (paper §7.2): regret of carrying last week's "
         "parameters stays within a few percent of each week's oracle — "
         "the estimation is practical; drift spikes flag the weeks where "
         "refitting mattered most.\n";
  return 0;
}
