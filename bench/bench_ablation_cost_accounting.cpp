// Ablation: how Δcost (eq. 6) depends on the N∥ accounting.
//
// The paper evaluates N∥ at the single point l = E_J (§6.2). But the load
// an administrator bills is E[job-seconds] = E[N∥(J)·J], and since
// N∥(l)·l is convex in l, the point estimate is biased low (Jensen). This
// bench quantifies the bias across the ratio sweep of Table 3/4 and
// re-runs the Δcost minimization under the exact fleet accounting, with
// Monte Carlo as the referee.
//
// Both stages are campaigns: one cell per ratio for the sweep (cells on a
// single-thread pool because the MC referee inside each shards across the
// shared pool), one cell per accounting for the minima.

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "exp/campaign.hpp"
#include "mc/mc_engine.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  const std::size_t mc_reps = bench::quick_mode() ? 20000 : 200000;
  bench::print_header(
      "ablation_cost_accounting",
      "Δcost (eq. 6 / Tables 4-5) under point vs fleet N∥ accounting",
      "2006-IX; MC = " + std::to_string(mc_reps) +
          " replications referee");

  const auto m = bench::load_model("2006-IX");
  const core::CostModel cost(m);
  const auto& delayed = cost.delayed();

  const std::vector<double> ratios = {1.1, 1.2, 1.25, 1.3, 1.4,
                                      1.5, 1.6, 1.8, 2.0};

  exp::CampaignAxes axes;
  // mc_reps is an evaluator parameter, so it joins the campaign identity:
  // a quick-mode checkpoint must not resume a full-mode run.
  axes.name = "ablation_cost_accounting_" + std::to_string(mc_reps);
  axes.scenario_axis = "t_inf/t0";
  axes.strategy_axis = "stage";
  for (const double ratio : ratios) {
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", ratio);
    axes.scenario_labels.emplace_back(label);
  }
  axes.strategy_labels = {"sweep"};
  axes.root_seed = 20090611;

  par::ThreadPool cell_pool(1);
  exp::CampaignOptions options;
  options.pool = &cell_pool;

  const auto result = bench::run_campaign(
      axes,
      [&](const exp::CellContext& ctx) {
        const auto opt = delayed.optimize_with_ratio(ratios[ctx.scenario]);
        const auto eval = cost.evaluate_delayed(opt.t0, opt.t_inf);
        mc::McOptions mo;
        mo.replications = mc_reps;
        mo.seed = ctx.seed;
        const auto mc = mc::simulate_delayed(m, opt.t0, opt.t_inf, mo);
        return exp::CellMetrics{{"t0", opt.t0},
                                {"t_inf", opt.t_inf},
                                {"ej", eval.expectation},
                                {"npar_point", eval.n_parallel},
                                {"npar_fleet", eval.n_parallel_fleet},
                                {"npar_mc", mc.aggregate_parallel},
                                {"dcost_point", eval.delta_cost},
                                {"dcost_fleet", eval.delta_cost_fleet}};
      },
      options);

  // ---- Δcost minima under each accounting (pure analytic cells) ----
  exp::CampaignAxes min_axes;
  min_axes.name = "ablation_cost_accounting_minima";
  min_axes.scenario_axis = "accounting";
  min_axes.strategy_axis = "stage";
  min_axes.scenario_labels = {"paper point (N// at E_J)",
                              "fleet (E[job-seconds]/E_J)"};
  min_axes.strategy_labels = {"optimize"};
  min_axes.root_seed = 20090611;

  const auto minima = bench::run_campaign(
      min_axes, [&](const exp::CellContext& ctx) {
        const auto opt =
            ctx.scenario == 0
                ? cost.optimize_delayed_cost()
                : cost.optimize_delayed_cost(-1.0, -1.0,
                                             core::CostDefinition::kFleet);
        return exp::CellMetrics{{"t0", opt.t0},
                                {"t_inf", opt.t_inf},
                                {"ej", opt.expectation},
                                {"dcost_point", opt.delta_cost},
                                {"dcost_fleet", opt.delta_cost_fleet}};
      });
  if (!result || !minima) return 0;  // shard mode: cells are on disk

  report::Table table({"t_inf/t0", "t0 (s)", "t_inf (s)", "E_J (s)",
                       "N// point", "N// fleet", "N// MC", "dcost point",
                       "dcost fleet"});
  for (std::size_t sc = 0; sc < ratios.size(); ++sc) {
    table.row()
        .cell(ratios[sc], 2)
        .cell(result->mean(sc, 0, "t0"), 0)
        .cell(result->mean(sc, 0, "t_inf"), 0)
        .cell(result->mean(sc, 0, "ej"), 1)
        .cell(result->mean(sc, 0, "npar_point"), 3)
        .cell(result->mean(sc, 0, "npar_fleet"), 3)
        .cell(result->mean(sc, 0, "npar_mc"), 3)
        .cell(result->mean(sc, 0, "dcost_point"), 3)
        .cell(result->mean(sc, 0, "dcost_fleet"), 3);
  }
  table.print(std::cout);

  std::cout << "\n-- Δcost minima under each accounting\n";
  report::Table optima({"accounting", "t0 (s)", "t_inf (s)", "E_J (s)",
                        "dcost point", "dcost fleet"});
  for (std::size_t sc = 0; sc < min_axes.scenario_labels.size(); ++sc) {
    optima.row()
        .cell(min_axes.scenario_labels[sc])
        .cell(minima->mean(sc, 0, "t0"), 0)
        .cell(minima->mean(sc, 0, "t_inf"), 0)
        .cell(minima->mean(sc, 0, "ej"), 1)
        .cell(minima->mean(sc, 0, "dcost_point"), 3)
        .cell(minima->mean(sc, 0, "dcost_fleet"), 3);
  }
  optima.print(std::cout);

  std::cout
      << "\nfinding: the fleet N∥ tracks the MC referee while the paper's "
         "point N∥ sits below both; Δcost < 1 configurations under the "
         "paper's accounting can bill > 1 in job-seconds. The fleet-optimal "
         "configuration trades a slightly higher E_J for honest savings "
         "(or reveals none exist on that week). See EXPERIMENTS.md.\n";
  return 0;
}
