// Ablation: how Δcost (eq. 6) depends on the N∥ accounting.
//
// The paper evaluates N∥ at the single point l = E_J (§6.2). But the load
// an administrator bills is E[job-seconds] = E[N∥(J)·J], and since
// N∥(l)·l is convex in l, the point estimate is biased low (Jensen). This
// bench quantifies the bias across the ratio sweep of Table 3/4 and
// re-runs the Δcost minimization under the exact fleet accounting, with
// Monte Carlo as the referee.

#include <iostream>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "mc/mc_engine.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header(
      "ablation_cost_accounting",
      "Δcost (eq. 6 / Tables 4-5) under point vs fleet N∥ accounting",
      "2006-IX; MC = 200k replications referee");

  const auto m = bench::load_model("2006-IX");
  const core::CostModel cost(m);
  const auto& delayed = cost.delayed();

  report::Table table({"t_inf/t0", "t0 (s)", "t_inf (s)", "E_J (s)",
                       "N// point", "N// fleet", "N// MC", "dcost point",
                       "dcost fleet"});
  for (const double ratio :
       {1.1, 1.2, 1.25, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0}) {
    const auto opt = delayed.optimize_with_ratio(ratio);
    const auto eval = cost.evaluate_delayed(opt.t0, opt.t_inf);
    mc::McOptions mo;
    mo.replications = 200000;
    const auto mc = mc::simulate_delayed(m, opt.t0, opt.t_inf, mo);
    table.row()
        .cell(ratio, 2)
        .cell(opt.t0, 0)
        .cell(opt.t_inf, 0)
        .cell(eval.expectation, 1)
        .cell(eval.n_parallel, 3)
        .cell(eval.n_parallel_fleet, 3)
        .cell(mc.aggregate_parallel, 3)
        .cell(eval.delta_cost, 3)
        .cell(eval.delta_cost_fleet, 3);
  }
  table.print(std::cout);

  std::cout << "\n-- Δcost minima under each accounting\n";
  report::Table optima({"accounting", "t0 (s)", "t_inf (s)", "E_J (s)",
                        "dcost point", "dcost fleet"});
  const auto pt = cost.optimize_delayed_cost();
  optima.row()
      .cell("paper point (N// at E_J)")
      .cell(pt.t0, 0)
      .cell(pt.t_inf, 0)
      .cell(pt.expectation, 1)
      .cell(pt.delta_cost, 3)
      .cell(pt.delta_cost_fleet, 3);
  const auto fl = cost.optimize_delayed_cost(
      -1.0, -1.0, core::CostDefinition::kFleet);
  optima.row()
      .cell("fleet (E[job-seconds]/E_J)")
      .cell(fl.t0, 0)
      .cell(fl.t_inf, 0)
      .cell(fl.expectation, 1)
      .cell(fl.delta_cost, 3)
      .cell(fl.delta_cost_fleet, 3);
  optima.print(std::cout);

  std::cout
      << "\nfinding: the fleet N∥ tracks the MC referee while the paper's "
         "point N∥ sits below both; Δcost < 1 configurations under the "
         "paper's accounting can bill > 1 in job-seconds. The fleet-optimal "
         "configuration trades a slightly higher E_J for honest savings "
         "(or reveals none exist on that week). See EXPERIMENTS.md.\n";
  return 0;
}
