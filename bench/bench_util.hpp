#pragma once

// Shared helpers for the experiment harness: dataset-to-model plumbing and
// consistent headers so every bench prints a self-describing report.

#include <iostream>
#include <string>

#include "model/discretized.hpp"
#include "traces/datasets.hpp"

namespace gridsub::bench {

/// Grid step used by all table/figure benches (1 s, i.e. the integer
/// resolution the paper uses for practical timeouts).
inline constexpr double kStep = 1.0;

/// Builds the discretized empirical model of a named dataset.
inline model::DiscretizedLatencyModel load_model(const std::string& name,
                                                 double step = kStep) {
  const auto trace = traces::make_trace_by_name(name);
  return model::DiscretizedLatencyModel::from_trace(trace, step);
}

/// Prints the standard bench header.
inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& note = "") {
  std::cout << "== gridsub experiment: " << experiment << " ==\n";
  std::cout << "reproduces: " << paper_ref
            << " (Lingrand/Montagnat/Glatard, HPDC'09)\n";
  std::cout << "data: synthetic EGEE-like traces calibrated to the paper's "
               "Table 1 (see DESIGN.md)\n";
  if (!note.empty()) std::cout << "note: " << note << "\n";
  std::cout << "\n";
}

}  // namespace gridsub::bench
