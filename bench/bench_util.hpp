#pragma once

// Shared helpers for the experiment harness: dataset-to-model plumbing,
// campaign-spec builders, and consistent headers so every bench prints a
// self-describing report.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "exp/experiment.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::bench {

/// Grid step used by all table/figure benches (1 s, i.e. the integer
/// resolution the paper uses for practical timeouts).
inline constexpr double kStep = 1.0;

/// Builds the discretized empirical model of a named dataset.
inline model::DiscretizedLatencyModel load_model(const std::string& name,
                                                 double step = kStep) {
  const auto trace = traces::make_trace_by_name(name);
  return model::DiscretizedLatencyModel::from_trace(trace, step);
}

/// True when the bench runner asked for a fast smoke pass
/// (GRIDSUB_BENCH_QUICK=1): campaign benches shrink replications, never
/// axes, so coverage stays full while CI stays fast.
inline bool quick_mode() {
  const char* v = std::getenv("GRIDSUB_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

/// Builds the campaign scenario for one synthetic replay week: an
/// egee_like grid whose Poisson background is silenced (the replayed
/// workload *is* the background traffic) plus the named scenario's
/// workload, shared read-only across cells.
inline exp::ScenarioCase replay_scenario(const std::string& name,
                                         const traces::ScenarioConfig& scen) {
  exp::ScenarioCase sc;
  sc.label = name;
  sc.grid = sim::GridConfig::egee_like();
  sc.grid.background.arrival_rate = 0.0;
  sc.workload = std::make_shared<const traces::Workload>(
      traces::make_scenario(name, scen));
  return sc;
}

/// Prints the standard bench header.
inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& note = "") {
  std::cout << "== gridsub experiment: " << experiment << " ==\n";
  std::cout << "reproduces: " << paper_ref
            << " (Lingrand/Montagnat/Glatard, HPDC'09)\n";
  std::cout << "data: synthetic EGEE-like traces calibrated to the paper's "
               "Table 1 (see DESIGN.md)\n";
  if (!note.empty()) std::cout << "note: " << note << "\n";
  std::cout << "\n";
}

}  // namespace gridsub::bench
