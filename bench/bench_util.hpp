#pragma once

// Shared helpers for the experiment harness: dataset-to-model plumbing,
// campaign-spec builders, and consistent headers so every bench prints a
// self-describing report.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/fold.hpp"
#include "exp/stage.hpp"
#include "model/discretized.hpp"
#include "traces/datasets.hpp"
#include "traces/scenarios.hpp"

namespace gridsub::bench {

/// Grid step used by all table/figure benches (1 s, i.e. the integer
/// resolution the paper uses for practical timeouts).
inline constexpr double kStep = 1.0;

/// Builds the discretized empirical model of a named dataset.
inline model::DiscretizedLatencyModel load_model(const std::string& name,
                                                 double step = kStep) {
  const auto trace = traces::make_trace_by_name(name);
  return model::DiscretizedLatencyModel::from_trace(trace, step);
}

/// True when the bench runner asked for a fast smoke pass
/// (GRIDSUB_BENCH_QUICK=1): campaign benches shrink replications, never
/// axes, so coverage stays full while CI stays fast.
inline bool quick_mode() {
  const char* v = std::getenv("GRIDSUB_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

/// Builds the campaign scenario for one synthetic replay week: an
/// egee_like grid whose Poisson background is silenced (the replayed
/// workload *is* the background traffic) plus the named scenario's
/// workload, shared read-only across cells.
inline exp::ScenarioCase replay_scenario(const std::string& name,
                                         const traces::ScenarioConfig& scen) {
  exp::ScenarioCase sc;
  sc.label = name;
  sc.grid = sim::GridConfig::egee_like();
  sc.grid.background.arrival_rate = 0.0;
  sc.workload = std::make_shared<const traces::Workload>(
      traces::make_scenario(name, scen));
  return sc;
}

/// Scale-out environment shared by every campaign bench, set by
/// scripts/run_benches.py (or by hand for multi-host runs):
///
///   GRIDSUB_SHARD="i/N"        this process owns cells flat % N == i
///                              (0-based); requires a checkpoint dir
///   GRIDSUB_CHECKPOINT_DIR=D   campaigns checkpoint to
///                              D/<campaign>[.shard<i>of<N>].ckpt and,
///                              when run to completion, also write the
///                              canonical D/<campaign>.json
struct CampaignEnv {
  exp::CampaignShard shard;
  std::string checkpoint_dir;

  [[nodiscard]] bool shard_mode() const { return shard.active(); }
  [[nodiscard]] std::string checkpoint_path(
      const std::string& campaign) const {
    std::string name = campaign;
    if (shard.active()) {
      name += ".shard" + std::to_string(shard.index) + "of" +
              std::to_string(shard.count);
    }
    return checkpoint_dir + "/" + name + ".ckpt";
  }
};

/// Parses the scale-out environment; exits with a message on a malformed
/// GRIDSUB_SHARD or a shard request without a checkpoint directory.
inline CampaignEnv campaign_env() {
  CampaignEnv env;
  if (const char* s = std::getenv("GRIDSUB_SHARD"); s != nullptr && *s) {
    std::size_t index = 0, count = 0;
    int consumed = 0;
    // %n + end check: trailing garbage ("1/2,x", "0/24x") must fail
    // loudly, not silently run the wrong cell partition.
    if (std::sscanf(s, "%zu/%zu%n", &index, &count, &consumed) != 2 ||
        s[consumed] != '\0' || count == 0 || index >= count) {
      std::fprintf(stderr,
                   "GRIDSUB_SHARD='%s' is not 'i/N' with 0 <= i < N\n", s);
      std::exit(2);
    }
    env.shard.index = index;
    env.shard.count = count;
  }
  if (const char* d = std::getenv("GRIDSUB_CHECKPOINT_DIR");
      d != nullptr && *d) {
    env.checkpoint_dir = d;
  }
  if (env.shard_mode() && env.checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "GRIDSUB_SHARD is set but GRIDSUB_CHECKPOINT_DIR is not: "
                 "shard results live only in checkpoint files\n");
    std::exit(2);
  }
  return env;
}

/// Wraps a campaign progress callback with the GRIDSUB_PROGRESS=1 stderr
/// meter: shard-aware completed/total plus an ETA extrapolated from the
/// fresh-cell rate (resumed cells are excluded — they land instantly at
/// the baseline snapshot and would make the estimate absurdly optimistic).
/// Throttled to one line every ~2 s plus the final snapshot, and the
/// snapshots fire under the runner lock, so the meter stays cheap and
/// never throws. Returns `inner` unchanged when the meter is off.
inline std::function<void(const exp::CampaignProgress&)> progress_meter(
    const std::string& name,
    std::function<void(const exp::CampaignProgress&)> inner = {}) {
  const char* v = std::getenv("GRIDSUB_PROGRESS");
  if (v == nullptr || v[0] != '1') return inner;
  using Clock = std::chrono::steady_clock;
  struct Meter {
    std::string name;
    Clock::time_point start = Clock::now();
    Clock::time_point last{};  // epoch: the baseline always prints
  };
  auto meter = std::make_shared<Meter>();
  meter->name = name;
  return [meter, inner = std::move(inner)](const exp::CampaignProgress& p) {
    if (inner) inner(p);
    const Clock::time_point now = Clock::now();
    if (p.fresh == 0) meter->start = now;  // baseline: resumed cells only
    const bool done = p.completed == p.total;
    if (!done && now - meter->last < std::chrono::seconds(2)) return;
    meter->last = now;
    std::string line = "[progress] " + meter->name + ": " +
                       std::to_string(p.completed) + "/" +
                       std::to_string(p.total) + " cells";
    if (p.shard.active()) {
      line += " (shard " + std::to_string(p.shard.index) + "/" +
              std::to_string(p.shard.count) + ")";
    }
    const double elapsed =
        std::chrono::duration<double>(now - meter->start).count();
    if (p.fresh > 0 && elapsed > 0.0 && !done) {
      const double rate = static_cast<double>(p.fresh) / elapsed;
      const double eta = static_cast<double>(p.total - p.completed) / rate;
      char buf[32];
      std::snprintf(buf, sizeof(buf), ", eta %.0fs", eta);
      line += buf;
    } else if (done) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ", done in %.1fs", elapsed);
      line += buf;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  };
}

/// Runs one campaign with the scale-out environment applied. Returns the
/// full result, or std::nullopt in shard mode (this process evaluated only
/// its cell partition into the shard checkpoint; merge the shards with
/// tools/gridsub_campaign_merge). Campaign names must be unique within a
/// bench — the checkpoint file is keyed on them. Only use this for
/// *terminal* campaigns whose cells are pure functions of the cell context
/// (everything the bench consumes is in the metrics); staged campaigns
/// whose evaluators feed later stages through side channels resume
/// incorrectly, because restored cells never re-run their side effects.
inline std::optional<exp::CampaignResult> run_campaign(
    const exp::CampaignAxes& axes, const exp::CellEvaluator& evaluate,
    exp::CampaignOptions options = {}) {
  const CampaignEnv env = campaign_env();
  if (!env.checkpoint_dir.empty()) {
    std::filesystem::create_directories(env.checkpoint_dir);
    options.checkpoint_path = env.checkpoint_path(axes.name);
    options.shard = env.shard;
  }
  options.on_progress =
      progress_meter(axes.name, std::move(options.on_progress));
  const exp::CampaignRunner runner(std::move(options));
  if (env.shard_mode()) {
    const std::size_t evaluated = runner.run_shard(axes, evaluate);
    std::cout << "[shard " << env.shard.index << "/" << env.shard.count
              << "] campaign '" << axes.name << "': evaluated " << evaluated
              << " cells into " << env.checkpoint_path(axes.name)
              << " (fold the shards with gridsub_campaign_merge)\n";
    return std::nullopt;
  }
  exp::CampaignResult result = runner.run(axes, evaluate);
  if (!env.checkpoint_dir.empty()) {
    // The canonical JSON lands next to the checkpoint so interrupted+
    // resumed runs can be diffed against straight-through ones — which
    // only works if a failed write dies loudly here, not at diff time.
    const std::string json_path =
        env.checkpoint_dir + "/" + axes.name + ".json";
    std::ofstream os(json_path, std::ios::binary);
    if (os) result.write_json(os);
    if (!os || !os.flush()) {
      std::fprintf(stderr, "cannot write campaign result '%s'\n",
                   json_path.c_str());
      std::exit(1);
    }
  }
  return result;
}

/// ExperimentSpec convenience overload of run_campaign.
inline std::optional<exp::CampaignResult> run_campaign(
    const exp::ExperimentSpec& spec, exp::CampaignOptions options = {}) {
  spec.validate();
  return run_campaign(spec.axes(), exp::make_cell_evaluator(spec),
                      std::move(options));
}

/// The streaming counterpart of run_campaign: same scale-out environment,
/// same checkpoint/shard plumbing, same canonical JSON artifacts — but the
/// result path never materializes the cell list. Cells fold straight into
/// per-group aggregates (FoldSink), and when a checkpoint directory is set
/// the canonical D/<campaign>.json is *streamed* to disk as cells complete
/// (JsonStreamSink) instead of being buffered and dumped, so peak memory
/// is O(reorder window + groups) at any campaign size. Returns the fold
/// summary, or std::nullopt in shard mode (cells land in the shard
/// checkpoint; fold them with gridsub_campaign_merge). Same purity caveat
/// as run_campaign: everything downstream consumes must travel in the
/// metrics.
inline std::optional<exp::CampaignSummary> run_campaign_streamed(
    const exp::CampaignAxes& axes, const exp::CellEvaluator& evaluate,
    exp::CampaignOptions options = {}) {
  const CampaignEnv env = campaign_env();
  if (!env.checkpoint_dir.empty()) {
    std::filesystem::create_directories(env.checkpoint_dir);
    options.checkpoint_path = env.checkpoint_path(axes.name);
    options.shard = env.shard;
  }
  options.on_progress =
      progress_meter(axes.name, std::move(options.on_progress));
  const exp::CampaignRunner runner(std::move(options));
  if (env.shard_mode()) {
    const std::size_t evaluated = runner.run_shard(axes, evaluate);
    std::cout << "[shard " << env.shard.index << "/" << env.shard.count
              << "] campaign '" << axes.name << "': evaluated " << evaluated
              << " cells into " << env.checkpoint_path(axes.name)
              << " (fold the shards with gridsub_campaign_merge)\n";
    return std::nullopt;
  }
  if (!env.checkpoint_dir.empty()) {
    // Stream the canonical JSON while the campaign runs; a full disk or
    // yanked volume fails the bench loudly mid-run, not at diff time.
    const std::string json_path =
        env.checkpoint_dir + "/" + axes.name + ".json";
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "cannot open campaign result '%s'\n",
                   json_path.c_str());
      std::exit(1);
    }
    exp::JsonStreamSink sink(os);
    try {
      runner.run_with_sink(axes, evaluate, sink);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write campaign result '%s': %s\n",
                   json_path.c_str(), e.what());
      std::exit(1);
    }
    if (!os.flush()) {
      std::fprintf(stderr, "cannot write campaign result '%s'\n",
                   json_path.c_str());
      std::exit(1);
    }
    return sink.take();
  }
  exp::FoldSink sink;
  runner.run_with_sink(axes, evaluate, sink);
  return sink.take();
}

/// ExperimentSpec convenience overload of run_campaign_streamed.
inline std::optional<exp::CampaignSummary> run_campaign_streamed(
    const exp::ExperimentSpec& spec, exp::CampaignOptions options = {}) {
  spec.validate();
  return run_campaign_streamed(spec.axes(), exp::make_cell_evaluator(spec),
                               std::move(options));
}

/// Runs a *stage* campaign (a fit/tune pass whose outputs parameterize
/// later campaigns) through exp::run_stage with the scale-out environment
/// applied: the stage persists to GRIDSUB_CHECKPOINT_DIR, so a kill
/// mid-fit resumes cell-by-cell, and sibling shard processes sharing the
/// directory load the published stage output instead of recomputing it.
/// Stage progress ("[stage] ...") goes to stderr. Evaluators must be pure
/// in the cell context — rebuild downstream state from the returned
/// result's cell metrics, never through side channels. The stage
/// checkpoint is single-writer: start shards staggered (or run shard 0 to
/// completion first) so exactly one process computes the stage and the
/// rest load it.
inline exp::StageResult run_stage_campaign(
    const exp::CampaignAxes& axes, const exp::CellEvaluator& evaluate,
    const std::string& identity, par::ThreadPool* pool = nullptr) {
  const CampaignEnv env = campaign_env();
  exp::StageOptions options;
  options.dir = env.checkpoint_dir;
  options.pool = pool;
  options.log = &std::cerr;
  options.on_progress = progress_meter(axes.name);
  return exp::run_stage(axes, evaluate, identity, options);
}

/// Looks up one metric of a stage-result cell by name; throws
/// std::out_of_range so a renamed fit metric fails loudly instead of
/// feeding zeros downstream.
inline double cell_metric(const exp::CellResult& cell,
                          const std::string& name) {
  for (const auto& [metric, value] : cell.metrics) {
    if (metric == name) return value;
  }
  throw std::out_of_range("cell " + std::to_string(cell.context.flat) +
                          " has no metric '" + name + "'");
}

/// Prints the standard bench header.
inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& note = "") {
  std::cout << "== gridsub experiment: " << experiment << " ==\n";
  std::cout << "reproduces: " << paper_ref
            << " (Lingrand/Montagnat/Glatard, HPDC'09)\n";
  std::cout << "data: synthetic EGEE-like traces calibrated to the paper's "
               "Table 1 (see DESIGN.md)\n";
  if (!note.empty()) std::cout << "note: " << note << "\n";
  std::cout << "\n";
}

}  // namespace gridsub::bench
