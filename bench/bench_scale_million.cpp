// One simulation, a million users (ROADMAP): a single DES week with
// 10^4 -> 10^6 concurrent strategy clients, so cross-user feedback — the
// paper's "multiple submission raises infrastructure load" caveat — is
// measured inside one grid instead of averaged over many small cells.
//
// Three sections:
//   1. Scale sweep: replay a stationary scenario week into one
//      GridSimulation while N mixed-strategy clients run their task
//      streams; the headline is events/sec of simulation progress plus
//      peak RSS per point.
//   2. Wheel A/B: the same timeout-heavy (delayed/multiple only) grid
//      with the timer wheel enabled vs. the heap-only queue, on a
//      deliberately scarce grid so armed-then-canceled t_inf timeouts
//      dominate — the regime the wheel exists for.
//   3. Equilibrium study (bench_des_feedback's question at scale): sweep
//      the fraction of clients that tune (multiple b=3) against a naive
//      single-resubmission population and report per-group mean J — what
//      happens when *everyone* tunes is read off the 100% row.
//
// Wall-clock throughput is intentionally reported here, NOT through
// campaign CellMetrics: campaign output is contractually byte-identical
// across thread counts and machines (docs/determinism.md), and wall time
// is neither. The simulated results (tasks done, mean J, submissions) are
// deterministic; the events/sec column is honest wall-clock and varies.
// The scale-out conventions are still honored: GRIDSUB_SHARD="i/N" runs
// only the work items with index % N == i, and GRIDSUB_PROGRESS=1 emits a
// shard-aware completed/total + ETA meter on stderr.
//
// GRIDSUB_BENCH_QUICK=1 caps the sweep at 10^5 clients (a full simulated
// week under CI); the full run extends to 10^6.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "numerics/kahan.hpp"
#include "report/table.hpp"
#include "sim/grid.hpp"
#include "sim/strategy_client.hpp"
#include "traces/scenarios.hpp"

namespace {

using namespace gridsub;

/// Peak resident set (MiB) from /proc/self/status (VmHWM); 0 where
/// unsupported. Monotone over the process lifetime, so points run in
/// ascending size order and the largest point owns the final number.
double peak_rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// The three paper strategies, assigned round-robin for the mixed
/// population; the timeout-heavy mix drops the single strategy (its
/// timeouts are the ones that usually *fire*; the wheel's win case is
/// timeouts that are armed and then canceled).
sim::StrategySpec mixed_spec(std::size_t i) {
  sim::StrategySpec spec;
  switch (i % 3) {
    case 0:
      spec.kind = core::StrategyKind::kSingleResubmission;
      spec.t_inf = 1500.0;
      break;
    case 1:
      spec.kind = core::StrategyKind::kMultipleSubmission;
      spec.b = 3;
      spec.t_inf = 900.0;
      break;
    default:
      spec.kind = core::StrategyKind::kDelayedResubmission;
      spec.t0 = 600.0;
      spec.t_inf = 900.0;
      break;
  }
  return spec;
}

sim::StrategySpec timeout_heavy_spec(std::size_t i) {
  sim::StrategySpec spec = mixed_spec(1 + (i % 2));
  return spec;
}

struct PointResult {
  std::size_t clients = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  std::uint64_t tasks_done = 0;
  double mean_latency = 0.0;   ///< deterministic
  double mean_submissions = 0.0;  ///< deterministic
  double mean_queue_wait = 0.0;   ///< deterministic (all jobs, admin view)
  double rss_mib = 0.0;
};

/// Runs one single-grid point: N clients with per-index specs, optional
/// replayed scenario week, bounded horizon. Clients keep running means
/// only (record_outcomes=false) so memory scales with N, not N x tasks.
PointResult run_point(
    std::size_t n_clients, bool wheel_enabled, double horizon,
    std::size_t tasks_per_client, std::size_t slots_per_client_x1000,
    const std::function<sim::StrategySpec(std::size_t)>& spec_for,
    const traces::Workload* week, double task_runtime = 1.0) {
  sim::GridConfig config = sim::GridConfig::egee_like();
  config.timer_wheel.enabled = wheel_enabled;
  // Capacity grows with the population (a grid serving 10^6 users has
  // more than 10^3 cores); the divisor picks how contended it is.
  const std::size_t factor =
      std::max<std::size_t>(1, n_clients * slots_per_client_x1000 / 1000 /
                                   static_cast<std::size_t>(1000));
  for (auto& element : config.elements) {
    element.slots = static_cast<int>(element.slots * factor);
  }
  if (week != nullptr) config.background.arrival_rate = 0.0;

  sim::GridSimulation grid(config);
  if (week != nullptr) grid.attach_replay(*week);

  std::deque<sim::StrategyClient> clients;
  for (std::size_t i = 0; i < n_clients; ++i) {
    clients.emplace_back(grid, spec_for(i), tasks_per_client, task_runtime,
                         /*record_outcomes=*/false);
  }
  for (auto& client : clients) client.start();

  const auto wall_start = std::chrono::steady_clock::now();
  grid.simulator().run_until(horizon);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  PointResult result;
  result.clients = n_clients;
  result.events = grid.simulator().processed_events();
  result.wall_seconds = wall;
  result.events_per_second =
      wall > 0.0 ? static_cast<double>(result.events) / wall : 0.0;
  numerics::KahanAccumulator latency_sum;
  numerics::KahanAccumulator submission_sum;
  for (const auto& client : clients) {
    result.tasks_done += client.tasks_done();
    const auto n = static_cast<double>(client.tasks_done());
    latency_sum.add(client.mean_latency() * n);
    submission_sum.add(client.mean_submissions() * n);
  }
  if (result.tasks_done > 0) {
    result.mean_latency =
        latency_sum.value() / static_cast<double>(result.tasks_done);
    result.mean_submissions =
        submission_sum.value() / static_cast<double>(result.tasks_done);
  }
  result.mean_queue_wait = grid.metrics().mean_queue_wait();
  result.rss_mib = peak_rss_mib();
  return result;
}

/// Work-item scheduler honoring GRIDSUB_SHARD + GRIDSUB_PROGRESS for a
/// plain (non-campaign) bench: items are owned round-robin by shard, and
/// the meter extrapolates ETA from completed owned items.
class ItemRunner {
 public:
  ItemRunner() : env_(bench::campaign_env()) {
    const char* v = std::getenv("GRIDSUB_PROGRESS");
    meter_ = v != nullptr && v[0] == '1';
  }

  [[nodiscard]] bool owns(std::size_t index) const {
    return !env_.shard_mode() || index % env_.shard.count == env_.shard.index;
  }

  /// Runs `fn` if this shard owns item `index`; returns true if run.
  bool run(std::size_t index, std::size_t total, const std::string& label,
           const std::function<void()>& fn) {
    if (!owns(index)) return false;
    const auto start = std::chrono::steady_clock::now();
    fn();
    elapsed_ += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    ++completed_;
    if (meter_) {
      std::size_t owned = 0;
      for (std::size_t i = 0; i < total; ++i) owned += owns(i) ? 1 : 0;
      const double eta =
          completed_ > 0
              ? elapsed_ / static_cast<double>(completed_) *
                    static_cast<double>(owned - completed_)
              : 0.0;
      std::fprintf(stderr,
                   "[scale_million%s] %zu/%zu done (%s), elapsed %.1fs, "
                   "eta %.1fs\n",
                   env_.shard_mode()
                       ? (" shard " + std::to_string(env_.shard.index) + "/" +
                          std::to_string(env_.shard.count))
                             .c_str()
                       : "",
                   completed_, owned, label.c_str(), elapsed_, eta);
    }
    return true;
  }

 private:
  bench::CampaignEnv env_;
  bool meter_ = false;
  std::size_t completed_ = 0;
  double elapsed_ = 0.0;
};

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  bench::print_header(
      "scale_million",
      "one DES week, 10^4-10^6 concurrent strategy clients",
      quick ? "quick: sweep capped at 1e5 clients"
            : "full: sweep up to 1e6 clients");

  const double week = 604800.0;
  const std::vector<std::size_t> sweep =
      quick ? std::vector<std::size_t>{10'000, 32'000, 100'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  const std::size_t tasks = quick ? 4 : 8;
  const std::size_t ab_clients = quick ? 32'000 : 200'000;
  const double ab_horizon = quick ? 6.0e4 : 3.0e5;
  const std::size_t eq_clients = quick ? 10'000 : 100'000;
  const double eq_horizon = 1.2e5;

  // Item list (fixed order => stable shard ownership): sweep points,
  // wheel A/B pair, equilibrium fractions.
  const std::vector<int> eq_tuned_of_4 = {0, 1, 2, 4};
  const std::size_t n_items = sweep.size() + 2 + eq_tuned_of_4.size();
  ItemRunner runner;
  std::size_t item = 0;

  // --- 1. scale sweep ---------------------------------------------------
  const traces::Workload stationary =
      traces::make_scenario("stationary-week");
  std::vector<PointResult> sweep_results;
  for (const std::size_t n : sweep) {
    runner.run(item++, n_items, "sweep n=" + std::to_string(n), [&] {
      sweep_results.push_back(run_point(n, /*wheel_enabled=*/true, week,
                                        tasks, /*slots_per_client_x1000=*/1000,
                                        mixed_spec, &stationary));
    });
  }
  if (!sweep_results.empty()) {
    report::Table table({"clients", "events", "events/s", "wall (s)",
                         "tasks done", "mean J (s)", "mean subs",
                         "peak RSS (MiB)"});
    for (const PointResult& r : sweep_results) {
      table.row()
          .cell(static_cast<long long>(r.clients))
          .cell(static_cast<long long>(r.events))
          .cell(r.events_per_second, 0)
          .cell(r.wall_seconds, 2)
          .cell(static_cast<long long>(r.tasks_done))
          .cell(r.mean_latency, 1)
          .cell(r.mean_submissions, 2)
          .cell(r.rss_mib, 1);
    }
    std::cout << "scenario week replayed into one grid, mixed "
                 "single/multiple/delayed population:\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  // --- 2. wheel A/B on the timeout-heavy mix ----------------------------
  PointResult with_wheel;
  PointResult heap_only;
  bool ran_wheel = runner.run(item++, n_items, "A/B wheel on", [&] {
    with_wheel = run_point(ab_clients, true, ab_horizon, /*tasks=*/2,
                           /*slots_per_client_x1000=*/31, timeout_heavy_spec,
                           nullptr);
  });
  bool ran_heap = runner.run(item++, n_items, "A/B wheel off", [&] {
    heap_only = run_point(ab_clients, false, ab_horizon, /*tasks=*/2,
                          /*slots_per_client_x1000=*/31, timeout_heavy_spec,
                          nullptr);
  });
  if (ran_wheel || ran_heap) {
    report::Table table(
        {"queue", "events", "events/s", "wall (s)", "tasks done"});
    for (const auto* r : {&with_wheel, &heap_only}) {
      if (r->clients == 0) continue;
      table.row()
          .cell(r == &with_wheel ? "timer wheel" : "heap only")
          .cell(static_cast<long long>(r->events))
          .cell(r->events_per_second, 0)
          .cell(r->wall_seconds, 2)
          .cell(static_cast<long long>(r->tasks_done));
    }
    std::cout << "timeout-heavy mix (multiple b=3 + delayed), "
              << ab_clients << " clients on a scarce grid:\n";
    table.print(std::cout);
    if (ran_wheel && ran_heap && heap_only.events_per_second > 0.0) {
      // End-to-end sim ratio: matchmaking and CE costs dilute the queue
      // win at this scale; BM_MillionClientTick (bench_perf_micro)
      // isolates the queue and carries the >=2x wheel/heap headline.
      std::printf("wheel events/s ratio: %.2fx end-to-end; trajectories "
                  "identical: events %s, tasks %s\n",
                  with_wheel.events_per_second / heap_only.events_per_second,
                  with_wheel.events == heap_only.events ? "equal" : "DIFFER",
                  with_wheel.tasks_done == heap_only.tasks_done ? "equal"
                                                                : "DIFFER");
    }
    std::cout << '\n';
  }

  // --- 3. everyone-tunes equilibrium ------------------------------------
  struct EqRow {
    int tuned_of_4;
    PointResult result;
  };
  std::vector<EqRow> eq_rows;
  for (const int tuned : eq_tuned_of_4) {
    runner.run(item++, n_items,
               "equilibrium " + std::to_string(25 * tuned) + "% tuned", [&] {
                 const auto spec_for = [tuned](std::size_t i) {
                   // Interleaved assignment: every block of 4 clients has
                   // `tuned` tuned members, so groups see the same grid.
                   if (static_cast<int>(i % 4) < tuned) {
                     sim::StrategySpec tuned_spec;
                     tuned_spec.kind =
                         core::StrategyKind::kMultipleSubmission;
                     tuned_spec.b = 3;
                     tuned_spec.t_inf = 900.0;
                     return tuned_spec;
                   }
                   sim::StrategySpec naive;
                   naive.kind = core::StrategyKind::kSingleResubmission;
                   naive.t_inf = 1500.0;
                   return naive;
                 };
                 // Scarce capacity (0.15 slots/client vs. the sweep's
                 // 1.0) and 600 s tasks: a losing copy that got a seat
                 // burns real slot-time before its sibling's completion
                 // cancels it, so everyone tuning has a visible cost.
                 eq_rows.push_back(
                     {tuned, run_point(eq_clients, true, eq_horizon,
                                       /*tasks=*/3,
                                       /*slots_per_client_x1000=*/150,
                                       spec_for, nullptr,
                                       /*task_runtime=*/600.0)});
               });
  }
  if (!eq_rows.empty()) {
    report::Table table({"tuned share", "tasks done", "mean J (s)",
                         "mean subs", "queue wait (s)", "events"});
    for (const EqRow& row : eq_rows) {
      table.row()
          .cell(std::to_string(25 * row.tuned_of_4) + "%")
          .cell(static_cast<long long>(row.result.tasks_done))
          .cell(row.result.mean_latency, 1)
          .cell(row.result.mean_submissions, 2)
          .cell(row.result.mean_queue_wait, 1)
          .cell(static_cast<long long>(row.result.events));
    }
    std::cout << "everyone-tunes equilibrium, " << eq_clients
              << " clients (extends bench_des_feedback):\n";
    table.print(std::cout);
    std::cout << "\ntakeaway: partial adoption lowers mean J, but as "
                 "adoption approaches 100% the gain erodes — J rises back "
                 "above the partial-adoption rows while submissions per "
                 "task and broker traffic multiply: individually optimal "
                 "is not collectively optimal, the paper's stated caveat "
                 "made quantitative.\n";
  }
  return 0;
}
