// Ablation: how many probes does strategy tuning actually need?
//
// §7.2 estimates (t0, t∞) from finite probe campaigns; every probe costs
// real grid time. We bootstrap subsamples of the 2006-IX trace at several
// sizes, tune on the subsample, then charge the tuned parameters against
// the full-trace oracle. The realized regret vs n sits next to the DKW
// envelope sqrt(ln(2/alpha) / 2n) for the ECDF error — the statistical
// budget a probe campaign buys.
//
// The (size × resample) sweep is a campaign: each replication is one
// bootstrap resample whose RNG stream is the cell seed, so the sweep is
// byte-reproducible at any thread count and checkpoints/shards across
// processes like every other campaign.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "core/single_resubmission.hpp"
#include "exp/campaign.hpp"
#include "model/discretized.hpp"
#include "report/table.hpp"
#include "stats/rng.hpp"
#include "traces/datasets.hpp"

namespace {

/// Bootstrap resample of `n` records from a trace.
gridsub::traces::Trace resample(const gridsub::traces::Trace& trace,
                                std::size_t n, gridsub::stats::Rng& rng) {
  gridsub::traces::Trace out("resample", trace.timeout());
  const auto records = trace.records();
  for (std::size_t i = 0; i < n; ++i) {
    out.add_record(records[rng.uniform_int(records.size())]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace gridsub;
  const std::size_t resamples = bench::quick_mode() ? 6 : 24;
  bench::print_header(
      "ablation_sample_size",
      "probe-campaign size vs tuning quality (supports §7.2)",
      "bootstrap " + std::to_string(resamples) +
          " resamples per size from 2006-IX; regret charged on the "
          "full-trace oracle");

  const auto full_trace = traces::make_trace_by_name("2006-IX");
  const auto oracle_model =
      model::DiscretizedLatencyModel::from_trace(full_trace, 1.0);
  const core::SingleResubmission oracle_single(oracle_model);
  const core::CostModel oracle_cost(oracle_model);
  const double oracle_ej = oracle_single.optimize().metrics.expectation;
  const double oracle_dcost = oracle_cost.optimize_delayed_cost().delta_cost;

  const std::vector<std::size_t> sizes = {50, 100, 200, 400, 800, 2005};

  exp::CampaignAxes axes;
  axes.name = "ablation_sample_size";
  axes.scenario_axis = "n probes";
  axes.strategy_axis = "stage";
  for (const std::size_t n : sizes) {
    axes.scenario_labels.push_back(std::to_string(n));
  }
  axes.strategy_labels = {"bootstrap"};
  axes.replications = resamples;
  axes.root_seed = 0x5A11;

  const auto result = bench::run_campaign_streamed(
      axes, [&](const exp::CellContext& ctx) {
        stats::Rng rng(ctx.seed);
        const auto sub = resample(full_trace, sizes[ctx.scenario], rng);
        const auto m = model::DiscretizedLatencyModel::from_trace(sub, 1.0);
        // Tune on the subsample...
        const auto t_opt = core::SingleResubmission(m).optimize().t_inf;
        const auto d_opt = core::CostModel(m).optimize_delayed_cost();
        // ...charge on the oracle.
        return exp::CellMetrics{
            {"ej_regret",
             oracle_single.expectation(t_opt) / oracle_ej - 1.0},
            {"dcost_regret",
             oracle_cost.evaluate_delayed(d_opt.t0, d_opt.t_inf).delta_cost /
                     oracle_dcost -
                 1.0}};
      });
  if (!result) return 0;  // shard mode: cells are on disk

  // Max regret comes from the fold's running extrema — no per-cell
  // storage, so the sweep aggregates in constant memory at any size.
  report::Table table({"n probes", "DKW eps (95%)", "E_J regret mean",
                       "E_J regret max", "dcost regret mean",
                       "dcost regret max"});
  for (std::size_t sc = 0; sc < sizes.size(); ++sc) {
    const double dkw = std::sqrt(std::log(2.0 / 0.05) /
                                 (2.0 * static_cast<double>(sizes[sc])));
    table.row()
        .cell(static_cast<long long>(sizes[sc]))
        .cell(dkw, 3)
        .percent(result->mean(sc, 0, "ej_regret"), 2)
        .percent(result->max(sc, 0, "ej_regret"), 2)
        .percent(result->mean(sc, 0, "dcost_regret"), 2)
        .percent(result->max(sc, 0, "dcost_regret"), 2);
  }
  table.print(std::cout);
  std::cout
      << "\nreading: a few hundred probes already place the tuned E_J "
         "within a couple of percent of the oracle — consistent with the "
         "paper running week-scale campaigns of ~800 probes; the Δcost "
         "optimum is the more data-hungry of the two because its surface "
         "is flat near 1.\n";
  return 0;
}
