// Ablation: how many probes does strategy tuning actually need?
//
// §7.2 estimates (t0, t∞) from finite probe campaigns; every probe costs
// real grid time. We bootstrap subsamples of the 2006-IX trace at several
// sizes, tune on the subsample, then charge the tuned parameters against
// the full-trace oracle. The realized regret vs n sits next to the DKW
// envelope sqrt(ln(2/alpha) / 2n) for the ECDF error — the statistical
// budget a probe campaign buys.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "core/single_resubmission.hpp"
#include "model/discretized.hpp"
#include "report/table.hpp"
#include "stats/rng.hpp"
#include "traces/datasets.hpp"

namespace {

/// Bootstrap resample of `n` records from a trace.
gridsub::traces::Trace resample(const gridsub::traces::Trace& trace,
                                std::size_t n, gridsub::stats::Rng& rng) {
  gridsub::traces::Trace out("resample", trace.timeout());
  const auto records = trace.records();
  for (std::size_t i = 0; i < n; ++i) {
    out.add_record(records[rng.uniform_int(records.size())]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace gridsub;
  bench::print_header(
      "ablation_sample_size",
      "probe-campaign size vs tuning quality (supports §7.2)",
      "bootstrap 24 resamples per size from 2006-IX; regret charged on "
      "the full-trace oracle");

  const auto full_trace = traces::make_trace_by_name("2006-IX");
  const auto oracle_model =
      model::DiscretizedLatencyModel::from_trace(full_trace, 1.0);
  const core::SingleResubmission oracle_single(oracle_model);
  const core::CostModel oracle_cost(oracle_model);
  const double oracle_ej = oracle_single.optimize().metrics.expectation;
  const double oracle_dcost = oracle_cost.optimize_delayed_cost().delta_cost;

  constexpr int kResamples = 24;
  stats::Rng rng(0x5A11);

  report::Table table({"n probes", "DKW eps (95%)", "E_J regret mean",
                       "E_J regret max", "dcost regret mean",
                       "dcost regret max"});
  for (const std::size_t n : {50u, 100u, 200u, 400u, 800u, 2005u}) {
    double sum_ej = 0.0, max_ej = 0.0, sum_dc = 0.0, max_dc = 0.0;
    for (int b = 0; b < kResamples; ++b) {
      const auto sub = resample(full_trace, n, rng);
      const auto m = model::DiscretizedLatencyModel::from_trace(sub, 1.0);
      // Tune on the subsample...
      const auto t_opt = core::SingleResubmission(m).optimize().t_inf;
      const auto d_opt = core::CostModel(m).optimize_delayed_cost();
      // ...charge on the oracle.
      const double ej_regret =
          oracle_single.expectation(t_opt) / oracle_ej - 1.0;
      const double dc_regret =
          oracle_cost.evaluate_delayed(d_opt.t0, d_opt.t_inf).delta_cost /
              oracle_dcost -
          1.0;
      sum_ej += ej_regret;
      max_ej = std::max(max_ej, ej_regret);
      sum_dc += dc_regret;
      max_dc = std::max(max_dc, dc_regret);
    }
    const double dkw = std::sqrt(std::log(2.0 / 0.05) /
                                 (2.0 * static_cast<double>(n)));
    table.row()
        .cell(static_cast<long long>(n))
        .cell(dkw, 3)
        .percent(sum_ej / kResamples, 2)
        .percent(max_ej, 2)
        .percent(sum_dc / kResamples, 2)
        .percent(max_dc, 2);
  }
  table.print(std::cout);
  std::cout
      << "\nreading: a few hundred probes already place the tuned E_J "
         "within a couple of percent of the oracle — consistent with the "
         "paper running week-scale campaigns of ~800 probes; the Δcost "
         "optimum is the more data-hungry of the two because its surface "
         "is flat near 1.\n";
  return 0;
}
