// Advisor serving throughput (ROADMAP "long-lived strategy-advisor
// service"): how fast can advise() answer while ingestion and snapshot
// publication keep running?
//
// Setup: a synthetic diurnal scenario week is replayed through
// serve::replay_feed (2 ingest threads, background refresher live) to
// warm one planner per (VO, site, user-class) key; pass an SWF archive
// path as argv[1] to warm from a real trace instead. Then three
// sections:
//
//   1. Lookup throughput at 1/2/8 reader threads. Each reader owns one
//      hazard slot and hammers advise() over the key universe for a
//      fixed wall window while 2 writer threads keep ingesting and the
//      background refresher keeps swapping snapshots — so the number is
//      serving-under-load, not an idle cache walk. Every answer's stamp
//      is re-verified (torn reads would be counted and reported; the
//      column must read 0).
//   2. Snapshot-swap latency: wall time of refresh_now() folding a full
//      batch of dirty keys into a freshly published snapshot.
//   3. Staleness: observations folded per swap (last/max) from
//      AdvisorStats — the freshness price of batching ingestion.
//
// Wall-clock numbers are intentionally reported here and NOT through
// campaign CellMetrics (campaign output is byte-identical by contract;
// throughput is not). GRIDSUB_BENCH_QUICK=1 shrinks the measurement
// windows, never the reader-count axis.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "serve/advisor.hpp"
#include "serve/replay_feed.hpp"
#include "traces/scenarios.hpp"
#include "traces/swf.hpp"

namespace {

using namespace gridsub;
using Clock = std::chrono::steady_clock;

struct QpsPoint {
  std::size_t readers = 0;
  std::uint64_t lookups = 0;
  double wall_seconds = 0.0;
  std::uint64_t torn = 0;
};

/// Hammers advise() from `n_readers` threads for `window_seconds` while
/// `service` keeps ingesting in the background.
QpsPoint measure_qps(serve::AdvisorService& service,
                     const std::vector<serve::AdvisorKey>& keys,
                     std::size_t n_readers, double window_seconds) {
  QpsPoint point;
  point.readers = n_readers;
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(n_readers);
  for (std::size_t r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      serve::AdvisorService::Reader reader(service);
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t count = 0;
      std::uint64_t bad = 0;
      std::size_t at = r;
      while (!done.load(std::memory_order_relaxed)) {
        const serve::Advice a = reader.advise(keys[at % keys.size()]);
        if (serve::advice_stamp(a) != a.stamp) ++bad;
        ++at;
        ++count;
      }
      lookups.fetch_add(count, std::memory_order_relaxed);
      torn.fetch_add(bad, std::memory_order_relaxed);
    });
  }

  const Clock::time_point start = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(window_seconds));
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  point.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  point.lookups = lookups.load();
  point.torn = torn.load();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "advisor-qps",
      "§7.2 online estimation, served: keyed planners behind lock-free "
      "snapshot lookups",
      "lookup throughput is wall-clock and machine-dependent; the torn "
      "column is a correctness gate and must be 0");

  const bool quick = bench::quick_mode();

  // --- workload ----------------------------------------------------------
  traces::Workload workload = [&] {
    if (argc > 1) {
      std::cout << "warming from SWF archive: " << argv[1] << "\n\n";
      return traces::read_swf_file(argv[1]);
    }
    traces::ScenarioConfig scenario;
    scenario.duration = quick ? 14400.0 : 86400.0;
    scenario.base_rate = 0.25;
    scenario.runtime_mean = 600.0;
    return traces::make_scenario("diurnal-week", scenario);
  }();

  serve::AdvisorConfig config;
  config.planner.window = 200;
  config.planner.min_observations = 60;
  config.planner.refit_interval = 60;
  config.planner.model_step = 20.0;
  config.planner.timeout = 4000.0;
  config.refresh_pending = 128;
  serve::AdvisorService service(config);
  service.start_refresher();

  serve::ReplayFeedConfig feed;
  feed.ingest_threads = 2;
  const Clock::time_point warm_start = Clock::now();
  const serve::ReplayFeedReport report =
      serve::replay_feed(service, workload, feed);
  const double warm_seconds =
      std::chrono::duration<double>(Clock::now() - warm_start).count();
  std::cout << "warm ingest: " << report.jobs << " jobs -> " << report.keys
            << " keys (" << report.completed << " completed, "
            << report.outliers << " outliers) in " << warm_seconds
            << " s, 2 ingest threads + background refresher\n\n";

  // Key universe for the lookup loops, in deterministic order.
  std::set<serve::AdvisorKey> key_set;
  {
    std::size_t index = 0;
    for (const traces::WorkloadJob& job : workload.jobs()) {
      key_set.insert(serve::key_for_job(job, index++, feed));
    }
  }
  const std::vector<serve::AdvisorKey> keys(key_set.begin(), key_set.end());

  // --- 1. lookup throughput under load -----------------------------------
  // Two writers keep every key's planner dirty (ingesting mid-range
  // latencies round-robin) so the refresher publishes fresh snapshots
  // throughout the measurement window.
  std::atomic<bool> stop_writers{false};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 2; ++w) {
    writers.emplace_back([&service, &keys, &stop_writers, w] {
      std::size_t at = w;
      std::uint64_t tick = 0;
      while (!stop_writers.load(std::memory_order_relaxed)) {
        service.ingest(keys[at % keys.size()],
                       500.0 + static_cast<double>(tick % 40));
        at += 2;
        ++tick;
      }
    });
  }

  const double window_seconds = quick ? 0.4 : 2.0;
  std::vector<QpsPoint> points;
  for (const std::size_t n_readers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    points.push_back(measure_qps(service, keys, n_readers, window_seconds));
  }
  stop_writers.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  report::Table qps({"readers", "lookups", "wall (s)", "lookups/s", "torn"});
  for (const QpsPoint& p : points) {
    qps.row()
        .cell(static_cast<long long>(p.readers))
        .cell(static_cast<long long>(p.lookups))
        .cell(p.wall_seconds, 3)
        .cell(static_cast<double>(p.lookups) / p.wall_seconds, 0)
        .cell(static_cast<long long>(p.torn));
  }
  std::cout << "lock-free lookups while 2 writers ingest and the "
               "refresher swaps snapshots:\n";
  qps.print(std::cout);
  std::cout << '\n';

  // --- 2. snapshot-swap latency ------------------------------------------
  // Dirty every key, then time the fold-and-publish. Repeated so the
  // mean is not one allocation hiccup.
  service.stop_refresher();
  const int swap_rounds = quick ? 5 : 20;
  double swap_total = 0.0;
  double swap_max = 0.0;
  for (int round = 0; round < swap_rounds; ++round) {
    for (const serve::AdvisorKey& key : keys) {
      service.ingest(key, 500.0 + static_cast<double>(round % 40));
    }
    const Clock::time_point t0 = Clock::now();
    (void)service.refresh_now();
    const double swap_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    swap_total += swap_seconds;
    swap_max = swap_seconds > swap_max ? swap_seconds : swap_max;
  }

  // --- 3. staleness -------------------------------------------------------
  const serve::AdvisorStats stats = service.stats();
  report::Table svc({"keys", "snapshots", "generation", "swap mean (ms)",
                     "swap max (ms)", "staleness last", "staleness max"});
  svc.row()
      .cell(static_cast<long long>(stats.keys))
      .cell(static_cast<long long>(stats.swaps))
      .cell(static_cast<long long>(stats.generation))
      .cell(1e3 * swap_total / swap_rounds, 3)
      .cell(1e3 * swap_max, 3)
      .cell(static_cast<long long>(stats.staleness_last))
      .cell(static_cast<long long>(stats.staleness_max));
  std::cout << "snapshot publication (swap = fold all " << keys.size()
            << " dirty keys + atomic pointer swap; staleness = "
               "observations folded per swap):\n";
  svc.print(std::cout);

  std::uint64_t torn_total = 0;
  for (const QpsPoint& p : points) torn_total += p.torn;
  if (torn_total != 0) {
    std::cerr << "FAIL: " << torn_total << " torn reads detected\n";
    return 1;
  }
  return 0;
}
