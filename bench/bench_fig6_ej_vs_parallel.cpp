// Figure 6: minimal expected execution time vs mean number of parallel
// job copies — delayed resubmission (ratio sweep) vs multiple submission
// (b sweep), on 2006-IX.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "report/series.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("fig6_ej_vs_parallel",
                      "Figure 6 (min E_J vs mean parallel jobs)");

  const auto m = bench::load_model("2006-IX");

  // Delayed strategy: sweep the imposed ratio; x = N∥ at the optimum.
  const core::DelayedResubmission delayed(m);
  std::vector<double> dx, dy;
  for (double ratio = 1.05; ratio <= 2.001; ratio += 0.05) {
    const auto opt = delayed.optimize_with_ratio(ratio);
    dx.push_back(opt.n_parallel);
    dy.push_back(opt.metrics.expectation);
  }

  // Multiple submission: N∥ = b.
  std::vector<double> mx, my;
  for (int b = 1; b <= 5; ++b) {
    const auto opt = core::MultipleSubmission(m, b).optimize();
    mx.push_back(static_cast<double>(b));
    my.push_back(opt.metrics.expectation);
  }

  report::Figure fig("Figure 6: minimal E_J vs mean parallel copies",
                     "nb. of jobs in parallel", "min E_J (s)");
  fig.add("delayed submission strategy", std::move(dx), std::move(dy));
  fig.add("multiple submissions strategy", std::move(mx), std::move(my));
  fig.print(std::cout);
  std::cout << "\npaper shape check: the delayed curve lives in "
               "N_par in [1, ~1.6] and undercuts single resubmission; "
               "multiple submission reaches lower E_J but only at integer "
               "N_par >= 2.\n";
  return 0;
}
