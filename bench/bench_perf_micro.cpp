// Microbenchmarks of the library primitives (google-benchmark): model
// construction, E_J evaluation, optimizers, Monte Carlo throughput, DES
// event rate. These quantify the costs the ablation benches trade off.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/cost.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "mc/mc_engine.hpp"
#include "model/discretized.hpp"
#include "sim/grid.hpp"
#include "traces/datasets.hpp"

namespace {

using namespace gridsub;

const traces::Trace& trace_2006() {
  static const traces::Trace t = traces::make_trace_by_name("2006-IX");
  return t;
}

const model::DiscretizedLatencyModel& model_2006() {
  static const auto m =
      model::DiscretizedLatencyModel::from_trace(trace_2006(), 1.0);
  return m;
}

void BM_TraceGeneration(benchmark::State& state) {
  const auto& config = traces::dataset_by_name("2007-52");
  for (auto _ : state) {
    benchmark::DoNotOptimize(traces::make_trace(config));
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_ModelBuild(benchmark::State& state) {
  const double step = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::DiscretizedLatencyModel::from_trace(trace_2006(), step));
  }
}
BENCHMARK(BM_ModelBuild)->Arg(1)->Arg(5)->Arg(25);

void BM_SingleExpectation(benchmark::State& state) {
  const auto& m = model_2006();
  const core::SingleResubmission s(m);
  double t = 300.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.expectation(t));
    t = (t < 2000.0) ? t + 1.0 : 300.0;
  }
}
BENCHMARK(BM_SingleExpectation);

void BM_MultipleOptimize(benchmark::State& state) {
  const auto& m = model_2006();
  const int b = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::MultipleSubmission multi(m, b);
    benchmark::DoNotOptimize(multi.optimize());
  }
}
BENCHMARK(BM_MultipleOptimize)->Arg(1)->Arg(5)->Arg(20);

void BM_DelayedExpectation(benchmark::State& state) {
  const auto& m = model_2006();
  const core::DelayedResubmission d(m);
  double t0 = 200.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.expectation(t0, 1.6 * t0));
    t0 = (t0 < 800.0) ? t0 + 1.0 : 200.0;
  }
}
BENCHMARK(BM_DelayedExpectation);

void BM_DelayedOptimize(benchmark::State& state) {
  const auto& m = model_2006();
  const core::DelayedResubmission d(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.optimize());
  }
}
BENCHMARK(BM_DelayedOptimize);

void BM_CostOptimum(benchmark::State& state) {
  const auto& m = model_2006();
  for (auto _ : state) {
    core::CostModel cost(m);
    benchmark::DoNotOptimize(cost.optimize_delayed_cost());
  }
}
BENCHMARK(BM_CostOptimum)->Unit(benchmark::kMillisecond);

void BM_McDelayed(benchmark::State& state) {
  const auto& m = model_2006();
  mc::McOptions options;
  options.replications = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::simulate_delayed(m, 300.0, 500.0, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_McDelayed)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_DesEventRate(benchmark::State& state) {
  for (auto _ : state) {
    sim::GridConfig config = sim::GridConfig::egee_like();
    config.background.arrival_rate = 0.5;
    sim::GridSimulation grid(config);
    grid.warm_up(50000.0);
    benchmark::DoNotOptimize(grid.simulator().processed_events());
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(grid.simulator().processed_events()),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_DesEventRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
