// Microbenchmarks of the library primitives (google-benchmark): model
// construction, E_J evaluation, optimizers, Monte Carlo throughput, DES
// event rate. These quantify the costs the ablation benches trade off.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cost.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "exp/experiment.hpp"
#include "mc/mc_engine.hpp"
#include "model/discretized.hpp"
#include "sim/computing_element.hpp"
#include "sim/event_queue.hpp"
#include "sim/grid.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "stats/rng.hpp"
#include "traces/datasets.hpp"
#include "traces/scenarios.hpp"

namespace {

using namespace gridsub;

const traces::Trace& trace_2006() {
  static const traces::Trace t = traces::make_trace_by_name("2006-IX");
  return t;
}

const model::DiscretizedLatencyModel& model_2006() {
  static const auto m =
      model::DiscretizedLatencyModel::from_trace(trace_2006(), 1.0);
  return m;
}

void BM_TraceGeneration(benchmark::State& state) {
  const auto& config = traces::dataset_by_name("2007-52");
  for (auto _ : state) {
    benchmark::DoNotOptimize(traces::make_trace(config));
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_ModelBuild(benchmark::State& state) {
  const double step = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::DiscretizedLatencyModel::from_trace(trace_2006(), step));
  }
}
BENCHMARK(BM_ModelBuild)->Arg(1)->Arg(5)->Arg(25);

void BM_SingleExpectation(benchmark::State& state) {
  const auto& m = model_2006();
  const core::SingleResubmission s(m);
  double t = 300.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.expectation(t));
    t = (t < 2000.0) ? t + 1.0 : 300.0;
  }
}
BENCHMARK(BM_SingleExpectation);

void BM_MultipleOptimize(benchmark::State& state) {
  const auto& m = model_2006();
  const int b = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::MultipleSubmission multi(m, b);
    benchmark::DoNotOptimize(multi.optimize());
  }
}
BENCHMARK(BM_MultipleOptimize)->Arg(1)->Arg(5)->Arg(20);

void BM_DelayedExpectation(benchmark::State& state) {
  const auto& m = model_2006();
  const core::DelayedResubmission d(m);
  double t0 = 200.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.expectation(t0, 1.6 * t0));
    t0 = (t0 < 800.0) ? t0 + 1.0 : 200.0;
  }
}
BENCHMARK(BM_DelayedExpectation);

void BM_DelayedOptimize(benchmark::State& state) {
  const auto& m = model_2006();
  const core::DelayedResubmission d(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.optimize());
  }
}
BENCHMARK(BM_DelayedOptimize);

void BM_CostOptimum(benchmark::State& state) {
  const auto& m = model_2006();
  for (auto _ : state) {
    core::CostModel cost(m);
    benchmark::DoNotOptimize(cost.optimize_delayed_cost());
  }
}
BENCHMARK(BM_CostOptimum)->Unit(benchmark::kMillisecond);

void BM_McDelayed(benchmark::State& state) {
  const auto& m = model_2006();
  mc::McOptions options;
  options.replications = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::simulate_delayed(m, 300.0, 500.0, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_McDelayed)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// DES core microbenches. The event callbacks capture a payload sized like
// the real hot events (ComputingElement's completion lambda: object pointer
// + job handle + a stored std::function) so allocation behaviour matches
// the simulation, not a toy captureless lambda.
struct EventPayload {
  void* owner;
  std::uint64_t handle;
  std::uint64_t filler[4];
};

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t sink = 0;
  const EventPayload payload{&sink, 42, {1, 2, 3, 4}};
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      q.push(static_cast<double>((i * 7919) % 997),
             [&sink, payload] { sink += payload.handle; });
    }
    while (!q.empty()) q.pop().fn();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueueCancelStorm(benchmark::State& state) {
  // The timeout-strategy pattern: schedule a timeout, the job starts first,
  // cancel and reschedule — millions of times per simulated week.
  sim::EventQueue q;
  std::uint64_t sink = 0;
  const EventPayload payload{&sink, 7, {1, 2, 3, 4}};
  q.push(1e18, [] {});  // one long-lived survivor keeps the queue non-empty
  constexpr int kBatch = 256;
  double t = 1.0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const sim::EventId id =
          q.push(t + i, [&sink, payload] { sink += payload.handle; });
      benchmark::DoNotOptimize(q.cancel(id));
    }
    t += 1.0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_EventQueueCancelStorm);

// Timer-wheel microbenches. Each queue bench runs with the wheel enabled
// (second arg 1) and heap-only (0) over the same pending population, so
// the wheel-vs-heap ratio is read straight out of BENCH_perf_micro.json
// and guarded by scripts/compare_bench.py. BM_MillionClientTick carries
// the headline: events/s on the timeout-heavy churn, wheel vs. heap.

sim::TimerWheelConfig wheel_config(bool enabled) {
  sim::TimerWheelConfig config;
  config.enabled = enabled;
  return config;
}

void BM_TimerWheelArmCancel(benchmark::State& state) {
  // N clients hold armed t_inf timeouts; each op cancels one and re-arms
  // it — pure arm/cancel churn with no time progress, so the cost is
  // insertion plus the amortized compaction sweep over canceled residue.
  sim::EventQueue q(wheel_config(state.range(1) != 0));
  std::uint64_t sink = 0;
  const EventPayload payload{&sink, 7, {1, 2, 3, 4}};
  const auto pending = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventId> armed(pending);
  for (std::size_t i = 0; i < pending; ++i) {
    armed[i] = q.push(900.0 + 0.05 * static_cast<double>(i % 4096),
                      [&sink, payload] { sink += payload.handle; });
  }
  std::size_t slot = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      q.cancel(armed[slot]);
      armed[slot] = q.push(900.0 + 0.05 * static_cast<double>(slot % 4096),
                           [&sink, payload] { sink += payload.handle; });
      slot = (slot + 1) % pending;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_TimerWheelArmCancel)->Args({1 << 20, 0})->Args({1 << 20, 1});

void BM_TimerWheelRotate(benchmark::State& state) {
  // Raw wheel machinery: file entries across all three levels, then
  // rotate until drained — the promotion cost the queue pays as time
  // advances across the filed range.
  sim::TimerWheel wheel{sim::TimerWheelConfig{}};
  std::vector<sim::TimerEntry> batch;
  std::uint64_t seq = 1;
  std::uint64_t drained = 0;
  const auto entries = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const double base = wheel.cursor_time() + 256.0;
    for (std::size_t i = 0; i < entries; ++i) {
      // 64 s stride over ~16.6M s spreads the population over all levels.
      const double offset = 64.0 * static_cast<double>((i * 7919) % 260000);
      wheel.try_insert(sim::TimerEntry{base + offset, seq,
                                       static_cast<std::uint32_t>(i), 1});
      ++seq;
    }
    while (!wheel.empty()) {
      batch.clear();
      wheel.rotate_into(batch);
      drained += batch.size();
    }
  }
  benchmark::DoNotOptimize(drained);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_TimerWheelRotate)->Arg(1 << 14);

/// Shared state for BM_MillionClientTick's self-rearming timeouts.
struct TickCtx {
  sim::EventQueue* q;
  std::vector<sim::EventId>* armed;
  double now = 0.0;
  std::uint64_t fired = 0;
};

/// A client's t_inf timeout: when it fires, the client starts its next
/// round and arms the next timeout. Small enough for SmallFn's inline
/// buffer, like the real strategy-client callbacks.
struct Rearm {
  TickCtx* ctx;
  std::uint32_t i;
  void operator()() const {
    ++ctx->fired;
    const double jitter =
        static_cast<double>((i * 2654435761u) % 4096u) * 0.2;
    (*ctx->armed)[i] =
        ctx->q->push(ctx->now + 600.0 + jitter, Rearm{ctx, i});
  }
};

void BM_MillionClientTick(benchmark::State& state) {
  // One tick of an N-client grid in the timeout-heavy steady state
  // (delayed/multiple mix): the earliest pending timeout fires and its
  // owner re-arms the next round, while kChurn clients whose copies got
  // seats cancel their timeouts and re-arm later ones — the b=3 pattern
  // where a settled task cancels its sibling copies' timeouts. The live
  // population stays at exactly N. Heap-only, every pop sifts down
  // log2(N) cache-missing levels of the big heap and canceled residue
  // deepens it; with the wheel, arm and cancel never touch the heap at
  // all. The wheel/heap events-per-second ratio at 2^20 pending is the
  // headline number.
  sim::EventQueue q(wheel_config(state.range(1) != 0));
  const auto pending = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventId> armed(pending);
  TickCtx ctx{&q, &armed, 0.0, 0};
  for (std::size_t i = 0; i < pending; ++i) {
    // Shuffled push order (odd multiplier, power-of-two modulus): the
    // heap starts structurally random, as after a long run, instead of
    // the artificially cache-friendly ascending layout.
    const std::size_t j = (i * 2654435761u) % pending;
    armed[j] = q.push(
        600.0 + 900.0 * static_cast<double>(j) / static_cast<double>(pending),
        Rearm{&ctx, static_cast<std::uint32_t>(j)});
  }
  std::size_t slot = 0;
  constexpr int kChurn = 3;  ///< timeouts canceled per settled task
  const auto tick = [&q, &ctx, &armed, &slot, pending] {
    auto fired = q.pop();
    ctx.now = fired.time;
    fired.fn();
    for (int c = 0; c < kChurn; ++c) {
      const auto j = static_cast<std::uint32_t>(slot);
      if (q.cancel(armed[j])) {
        const double jitter =
            static_cast<double>((j * 1779033703u) % 4096u) * 0.2;
        armed[j] = q.push(ctx.now + 600.0 + jitter, Rearm{&ctx, j});
      }
      // Full-cycle pseudo-random walk: cancels hit timeouts of every
      // age, not just the ones about to surface at the heap head.
      slot = (slot + 2654435761u) % pending;
    }
  };
  // Cycle the initial population once so the measured window sees the
  // steady state — canceled residue surfacing at the head at the same
  // rate it is produced — not the artificially clean start-up phase.
  while (ctx.now < 1600.0) tick();
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) tick();
  }
  benchmark::DoNotOptimize(ctx.fired);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(kBatch * (1 + 2 * kChurn)),
      benchmark::Counter::kIsIterationInvariantRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_MillionClientTick)
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_CeSubmitCancel(benchmark::State& state) {
  // Submit into a saturated CE and cancel while queued — the strategy
  // clients' dominant interaction with the batch queue.
  sim::Simulator des;
  sim::ComputingElement ce(des, "bench-ce", 4, 0.0, stats::Rng(1));
  for (int i = 0; i < 4; ++i) ce.submit(1e18, nullptr);  // pin all slots
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const auto handle = ce.submit(10.0, nullptr);
      benchmark::DoNotOptimize(ce.cancel(handle));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_CeSubmitCancel);

void BM_DelayedTuneFit(benchmark::State& state) {
  // One campaign fit-stage unit: build the strategy evaluator (survival
  // prefix grids) and tune (t0, t_inf) — the Nelder-Mead objective calls
  // product_integrals a few hundred times.
  const auto& m = model_2006();
  for (auto _ : state) {
    const core::DelayedResubmission d(m);
    benchmark::DoNotOptimize(d.optimize());
  }
}
BENCHMARK(BM_DelayedTuneFit)->Unit(benchmark::kMillisecond);

void BM_ScenarioWeekCell(benchmark::State& state) {
  // One full trace-replay campaign cell (the unit every campaign grid is
  // made of): replayed diurnal week on the egee_like grid, warm-up, one
  // delayed-resubmission client to the horizon.
  static const exp::ScenarioCase scenario = [] {
    traces::ScenarioConfig scen;
    scen.base_rate = 0.30;
    scen.seed = 20090611;
    exp::ScenarioCase sc;
    sc.label = "diurnal-week";
    sc.grid = sim::GridConfig::egee_like();
    sc.grid.background.arrival_rate = 0.0;
    sc.workload = std::make_shared<const traces::Workload>(
        traces::make_scenario("diurnal-week", scen));
    return sc;
  }();
  sim::StrategySpec strategy;
  strategy.kind = core::StrategyKind::kDelayedResubmission;
  strategy.t0 = 900.0;
  strategy.t_inf = 1500.0;
  exp::ClientConfig clients;
  clients.warm_up = 6.0 * 3600.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_strategy_cell(scenario, strategy, clients, 20090611));
  }
}
BENCHMARK(BM_ScenarioWeekCell)->Unit(benchmark::kMillisecond);

void BM_DesEventRate(benchmark::State& state) {
  for (auto _ : state) {
    sim::GridConfig config = sim::GridConfig::egee_like();
    config.background.arrival_rate = 0.5;
    sim::GridSimulation grid(config);
    grid.warm_up(50000.0);
    benchmark::DoNotOptimize(grid.simulator().processed_events());
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(grid.simulator().processed_events()),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_DesEventRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
