// Figure 3: minimal E_J and associated sigma_J vs number of parallel jobs
// (b = 1..10) for every dataset.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/multiple_submission.hpp"
#include "parallel/parallel_for.hpp"
#include "report/series.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("fig3_multi_datasets",
                      "Figure 3 (min E_J and sigma_J vs b, all datasets)");

  const auto names = traces::all_dataset_names_with_union();
  struct Row {
    std::vector<double> ej, sigma;
  };
  std::vector<Row> rows(names.size());
  // One dataset per worker: trace generation + 10 optimizations each.
  par::parallel_for(0, static_cast<std::int64_t>(names.size()),
                    [&](std::int64_t i) {
                      const auto m = bench::load_model(names[i]);
                      for (int b = 1; b <= 10; ++b) {
                        const auto opt =
                            core::MultipleSubmission(m, b).optimize();
                        rows[i].ej.push_back(opt.metrics.expectation);
                        rows[i].sigma.push_back(opt.metrics.std_deviation);
                      }
                    });

  std::vector<double> bs;
  for (int b = 1; b <= 10; ++b) bs.push_back(b);
  report::Figure fig_ej("Figure 3 (top): minimal E_J vs b",
                        "number of jobs in parallel (b)", "min E_J (s)");
  report::Figure fig_sigma("Figure 3 (bottom): sigma_J at the optimum vs b",
                           "number of jobs in parallel (b)", "sigma_J (s)");
  for (std::size_t i = 0; i < names.size(); ++i) {
    fig_ej.add(names[i], bs, rows[i].ej);
    fig_sigma.add(names[i], bs, rows[i].sigma);
  }
  fig_ej.print(std::cout);
  std::cout << "\n";
  fig_sigma.print(std::cout);
  std::cout << "\npaper shape check: every dataset's curve decreases in b; "
               "week ordering is preserved across b.\n";
  return 0;
}
