// Validation table (beyond the paper): analytic E_J/sigma_J/N∥ vs Monte
// Carlo execution of the client protocols, across all three strategies on
// 2006-IX. Also arbitrates the printed eq. 5 against the survival form.
//
// Both tables are campaigns on the experiment engine (one cell per
// parameter configuration), so the validation sweep checkpoints, resumes,
// and shards across processes like every other campaign. Cells run on a
// dedicated single-thread pool: the MC engine inside each cell shards its
// replications across the *shared* pool, and nesting campaign cells on
// that same pool would stall its workers.

#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "exp/campaign.hpp"
#include "mc/mc_engine.hpp"
#include "report/table.hpp"

namespace {

using namespace gridsub;

struct Config {
  enum class Family { kSingle, kMultiple, kDelayed };
  std::string label;
  Family family = Family::kSingle;
  double t0 = 0.0;
  double t_inf = 0.0;
  int b = 1;
};

std::vector<Config> validation_configs() {
  std::vector<Config> configs;
  for (const double t : {300.0, 600.0, 1200.0}) {
    configs.push_back({"single t_inf=" + std::to_string(static_cast<int>(t)),
                       Config::Family::kSingle, 0.0, t, 1});
  }
  for (const int b : {2, 5, 10}) {
    configs.push_back({"multiple b=" + std::to_string(b),
                       Config::Family::kMultiple, 0.0, 0.0, b});
  }
  for (const auto& [t0, ti] :
       {std::pair{250.0, 450.0}, {400.0, 640.0}, {550.0, 880.0}}) {
    configs.push_back({"delayed t0=" + std::to_string(static_cast<int>(t0)) +
                           ",t_inf=" + std::to_string(static_cast<int>(ti)),
                       Config::Family::kDelayed, t0, ti, 1});
  }
  return configs;
}

}  // namespace

int main() {
  using namespace gridsub;
  const std::size_t mc_reps = bench::quick_mode() ? 50000 : 500000;
  bench::print_header("mc_validation",
                      "eqs. 1-5 cross-checked by Monte Carlo",
                      std::to_string(mc_reps) +
                          " replications per row, deterministic seeds, "
                          "campaign engine");

  const auto m = bench::load_model("2006-IX");
  const core::SingleResubmission single(m);
  const core::DelayedResubmission delayed(m);
  const std::vector<Config> configs = validation_configs();

  exp::CampaignAxes axes;
  // The replication count is an evaluator parameter, so it must be part
  // of the campaign identity: otherwise a quick-mode checkpoint would be
  // silently resumed by a full-mode run (and vice versa).
  axes.name = "mc_validation_" + std::to_string(mc_reps);
  axes.scenario_axis = "config";
  axes.strategy_axis = "check";
  for (const auto& c : configs) axes.scenario_labels.push_back(c.label);
  axes.strategy_labels = {"model-vs-mc"};
  axes.root_seed = 20090611;

  par::ThreadPool cell_pool(1);
  exp::CampaignOptions options;
  options.pool = &cell_pool;

  const auto evaluate = [&](const exp::CellContext& ctx) -> exp::CellMetrics {
    const Config& c = configs[ctx.scenario];
    mc::McOptions mo;
    mo.replications = mc_reps;
    mo.seed = ctx.seed;
    switch (c.family) {
      case Config::Family::kSingle: {
        const auto mc = mc::simulate_single(m, c.t_inf, mo);
        return {{"ej_model", single.expectation(c.t_inf)},
                {"ej_mc", mc.mean_latency},
                {"sigma_model", single.std_deviation(c.t_inf)},
                {"sigma_mc", mc.std_latency},
                {"npar_model", 1.0},
                {"npar_mc", mc.aggregate_parallel}};
      }
      case Config::Family::kMultiple: {
        const core::MultipleSubmission multi(m, c.b);
        const auto opt = multi.optimize();
        const auto mc = mc::simulate_multiple(m, c.b, opt.t_inf, mo);
        return {{"ej_model", opt.metrics.expectation},
                {"ej_mc", mc.mean_latency},
                {"sigma_model", opt.metrics.std_deviation},
                {"sigma_mc", mc.std_latency},
                {"npar_model", static_cast<double>(c.b)},
                {"npar_mc", mc.aggregate_parallel}};
      }
      default: {
        const auto mc = mc::simulate_delayed(m, c.t0, c.t_inf, mo);
        return {{"ej_model", delayed.expectation(c.t0, c.t_inf)},
                {"ej_mc", mc.mean_latency},
                {"sigma_model", delayed.std_deviation(c.t0, c.t_inf)},
                {"sigma_mc", mc.std_latency},
                {"npar_model", delayed.expected_parallel_jobs(c.t0, c.t_inf)},
                {"npar_mc", mc.mean_parallel_ratio}};
      }
    }
  };

  // ---- eq. 5 arbitration: survival form vs the printed eq. 5 vs MC ----
  const std::vector<std::pair<double, double>> arb_pairs = {
      {300.0, 580.0}, {400.0, 700.0}, {250.0, 480.0}};
  exp::CampaignAxes arb_axes;
  arb_axes.name = "mc_eq5_arbitration_" + std::to_string(mc_reps);
  arb_axes.scenario_axis = "window";
  arb_axes.strategy_axis = "check";
  for (const auto& [t0, ti] : arb_pairs) {
    arb_axes.scenario_labels.push_back(
        "t0=" + std::to_string(static_cast<int>(t0)) +
        ",t_inf=" + std::to_string(static_cast<int>(ti)));
  }
  arb_axes.strategy_labels = {"model-vs-mc"};
  arb_axes.root_seed = 20090612;

  const auto arb_evaluate =
      [&](const exp::CellContext& ctx) -> exp::CellMetrics {
    const auto [t0, ti] = arb_pairs[ctx.scenario];
    mc::McOptions mo;
    mo.replications = mc_reps;
    mo.seed = ctx.seed;
    const auto mc = mc::simulate_delayed(m, t0, ti, mo);
    return {{"survival", delayed.expectation(t0, ti)},
            {"eq5", delayed.expectation_paper_eq5(t0, ti)},
            {"mc", mc.mean_latency}};
  };

  const auto result = bench::run_campaign_streamed(axes, evaluate, options);
  const auto arb =
      bench::run_campaign_streamed(arb_axes, arb_evaluate, options);
  if (!result || !arb) return 0;  // shard mode: cells are on disk

  report::Table table({"strategy", "params", "E_J model", "E_J mc",
                       "sigma model", "sigma mc", "N_par model", "N_par mc",
                       "rel.err E_J"});
  for (std::size_t sc = 0; sc < configs.size(); ++sc) {
    const std::string& label = configs[sc].label;
    const std::size_t split = label.find(' ');
    const double ej = result->mean(sc, 0, "ej_model");
    const double ej_mc = result->mean(sc, 0, "ej_mc");
    table.row()
        .cell(label.substr(0, split))
        .cell(label.substr(split + 1))
        .cell(ej, 1)
        .cell(ej_mc, 1)
        .cell(result->mean(sc, 0, "sigma_model"), 1)
        .cell(result->mean(sc, 0, "sigma_mc"), 1)
        .cell(result->mean(sc, 0, "npar_model"), 3)
        .cell(result->mean(sc, 0, "npar_mc"), 3)
        .percent((ej_mc - ej) / ej, 2);
  }
  table.print(std::cout);

  std::cout << "\neq. 5 arbitration (delayed strategy, overlap window with "
               "probability mass):\n";
  report::Table arb_table({"t0", "t_inf", "survival form", "paper eq.5",
                           "mc"});
  for (std::size_t sc = 0; sc < arb_pairs.size(); ++sc) {
    arb_table.row()
        .cell(arb_pairs[sc].first, 0)
        .cell(arb_pairs[sc].second, 0)
        .cell(arb->mean(sc, 0, "survival"), 1)
        .cell(arb->mean(sc, 0, "eq5"), 1)
        .cell(arb->mean(sc, 0, "mc"), 1);
  }
  arb_table.print(std::cout);
  std::cout << "\nMonte Carlo sides with the survival form; the printed "
               "eq. 5 over-estimates E_J once F~(t_inf - t0) > 0 (see "
               "DESIGN.md, 'A note on eq. 5').\n";
  return 0;
}
