// Validation table (beyond the paper): analytic E_J/sigma_J/N∥ vs Monte
// Carlo execution of the client protocols, across all three strategies on
// 2006-IX. Also arbitrates the printed eq. 5 against the survival form.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/delayed_resubmission.hpp"
#include "core/multiple_submission.hpp"
#include "core/single_resubmission.hpp"
#include "mc/mc_engine.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("mc_validation",
                      "eqs. 1-5 cross-checked by Monte Carlo",
                      "500k replications per row, deterministic seeds");

  const auto m = bench::load_model("2006-IX");
  mc::McOptions mo;
  mo.replications = 500000;

  report::Table table({"strategy", "params", "E_J model", "E_J mc",
                       "sigma model", "sigma mc", "N_par model", "N_par mc",
                       "rel.err E_J"});

  const core::SingleResubmission single(m);
  for (double t : {300.0, 600.0, 1200.0}) {
    const auto mc = mc::simulate_single(m, t, mo);
    const double ej = single.expectation(t);
    table.row()
        .cell(std::string("single"))
        .cell("t_inf=" + std::to_string(static_cast<int>(t)))
        .cell(ej, 1)
        .cell(mc.mean_latency, 1)
        .cell(single.std_deviation(t), 1)
        .cell(mc.std_latency, 1)
        .cell(1.0, 3)
        .cell(mc.aggregate_parallel, 3)
        .percent((mc.mean_latency - ej) / ej, 2);
  }
  for (int b : {2, 5, 10}) {
    const core::MultipleSubmission multi(m, b);
    const auto opt = multi.optimize();
    const auto mc = mc::simulate_multiple(m, b, opt.t_inf, mo);
    table.row()
        .cell(std::string("multiple"))
        .cell("b=" + std::to_string(b))
        .cell(opt.metrics.expectation, 1)
        .cell(mc.mean_latency, 1)
        .cell(opt.metrics.std_deviation, 1)
        .cell(mc.std_latency, 1)
        .cell(static_cast<double>(b), 3)
        .cell(mc.aggregate_parallel, 3)
        .percent((mc.mean_latency - opt.metrics.expectation) /
                 opt.metrics.expectation, 2);
  }
  const core::DelayedResubmission delayed(m);
  for (auto [t0, ti] :
       {std::pair{250.0, 450.0}, {400.0, 640.0}, {550.0, 880.0}}) {
    const auto mc = mc::simulate_delayed(m, t0, ti, mo);
    const double ej = delayed.expectation(t0, ti);
    table.row()
        .cell(std::string("delayed"))
        .cell("t0=" + std::to_string(static_cast<int>(t0)) + ",t_inf=" +
              std::to_string(static_cast<int>(ti)))
        .cell(ej, 1)
        .cell(mc.mean_latency, 1)
        .cell(delayed.std_deviation(t0, ti), 1)
        .cell(mc.std_latency, 1)
        .cell(delayed.expected_parallel_jobs(t0, ti), 3)
        .cell(mc.mean_parallel_ratio, 3)
        .percent((mc.mean_latency - ej) / ej, 2);
  }
  table.print(std::cout);

  std::cout << "\neq. 5 arbitration (delayed strategy, overlap window with "
               "probability mass):\n";
  report::Table arb({"t0", "t_inf", "survival form", "paper eq.5", "mc"});
  for (auto [t0, ti] :
       {std::pair{300.0, 580.0}, {400.0, 700.0}, {250.0, 480.0}}) {
    const auto mc = mc::simulate_delayed(m, t0, ti, mo);
    arb.row()
        .cell(t0, 0)
        .cell(ti, 0)
        .cell(delayed.expectation(t0, ti), 1)
        .cell(delayed.expectation_paper_eq5(t0, ti), 1)
        .cell(mc.mean_latency, 1);
  }
  arb.print(std::cout);
  std::cout << "\nMonte Carlo sides with the survival form; the printed "
               "eq. 5 over-estimates E_J once F~(t_inf - t0) > 0 (see "
               "DESIGN.md, 'A note on eq. 5').\n";
  return 0;
}
