// Table 6: cross-week transfer of (t0, t∞) — each week's Δcost-optimal
// parameters evaluated on every other week, with the "week before" column
// (the paper's practical-implementation argument: estimating the optimum
// from last week's traces costs only a few percent).
//
// Both stages run on the campaign engine: a (week × tune) campaign
// optimizes each week's parameters concurrently, then a (target week ×
// source week) campaign scores every transfer cell.

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "exp/campaign.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table6_cross_week",
                      "Table 6 (cross-week parameter transfer)");

  // The paper uses the 6 weeks 2007-51..2008-03 plus the 2007/08 union.
  const std::vector<std::string> weeks = {"2007-51", "2007-52", "2007-53",
                                          "2008-01", "2008-02", "2008-03",
                                          "2007/08"};
  // Stage 1: per-week Δcost optimization on the campaign engine, with its
  // output persisted as a stage checkpoint: the tuned (t0, t∞) travel in
  // the stage metrics, so a killed run resumes mid-tune and sibling shard
  // processes load the published stage instead of re-optimizing 7 weeks.
  exp::CampaignAxes tune_axes;
  tune_axes.name = "table6_tune";
  tune_axes.scenario_axis = "week";
  tune_axes.strategy_axis = "stage";
  tune_axes.scenario_labels = weeks;
  tune_axes.strategy_labels = {"tune"};
  std::string tune_identity = "datasets=";
  for (const auto& w : weeks) tune_identity += w + ",";
  tune_identity += ";step=" + std::to_string(bench::kStep);
  const exp::StageResult tuned = bench::run_stage_campaign(
      tune_axes,
      [&](const exp::CellContext& ctx) {
        const auto model = bench::load_model(weeks[ctx.scenario]);
        const core::CostModel cost(model);
        const core::CostEvaluation opt = cost.optimize_delayed_cost();
        return exp::CellMetrics{{"t0", opt.t0},
                                {"t_inf", opt.t_inf},
                                {"E_J", opt.expectation},
                                {"d_cost", opt.delta_cost}};
      },
      tune_identity);

  // Tuned parameters come from the stage metrics; the target-week cost
  // models are deterministic functions of the dataset names, rebuilt here
  // once per process (cheap next to the optimization the stage skips).
  std::vector<core::CostEvaluation> opt(weeks.size());
  for (const exp::CellResult& cell : tuned.result.cells()) {
    core::CostEvaluation& o = opt[cell.context.scenario];
    o.t0 = bench::cell_metric(cell, "t0");
    o.t_inf = bench::cell_metric(cell, "t_inf");
    o.expectation = bench::cell_metric(cell, "E_J");
    o.delta_cost = bench::cell_metric(cell, "d_cost");
  }
  std::vector<std::unique_ptr<core::CostModel>> cost(weeks.size());
  std::vector<std::unique_ptr<model::DiscretizedLatencyModel>> models(
      weeks.size());
  for (std::size_t w = 0; w < weeks.size(); ++w) {
    models[w] = std::make_unique<model::DiscretizedLatencyModel>(
        bench::load_model(weeks[w]));
    cost[w] = std::make_unique<core::CostModel>(*models[w]);
  }

  // Stage 2: the full transfer matrix — source week's parameters scored on
  // the target week's model, streamed straight into fold aggregates.
  exp::CampaignAxes transfer_axes;
  transfer_axes.name = "table6_transfer";
  transfer_axes.scenario_axis = "evaluated on";
  transfer_axes.strategy_axis = "params from";
  transfer_axes.scenario_labels = weeks;
  transfer_axes.strategy_labels = weeks;
  const auto transfer = bench::run_campaign_streamed(
      transfer_axes, [&](const exp::CellContext& ctx) {
        const core::CostEvaluation& p = opt[ctx.strategy];
        const auto e = cost[ctx.scenario]->evaluate_delayed(p.t0, p.t_inf);
        return exp::CellMetrics{{"t0", p.t0},
                                {"t_inf", p.t_inf},
                                {"E_J", e.expectation},
                                {"d_cost", e.delta_cost}};
      });
  if (!transfer) return 0;  // shard mode: cells are on disk

  for (std::size_t target = 0; target < weeks.size(); ++target) {
    std::cout << "evaluated on " << weeks[target] << ":\n";
    report::Table table({"params from", "t0", "t_inf", "E_J", "d_cost"});
    const double own = transfer->mean(target, target, "d_cost");
    double max_diff = 0.0, prev_diff = std::nan("");
    for (std::size_t source = 0; source < weeks.size(); ++source) {
      const double d_cost = transfer->mean(target, source, "d_cost");
      table.row()
          .cell(weeks[source] + (source == target ? " (own)" : ""))
          .cell(transfer->mean(target, source, "t0"), 0)
          .cell(transfer->mean(target, source, "t_inf"), 0)
          .cell(report::seconds(transfer->mean(target, source, "E_J")))
          .cell(d_cost, 3);
      max_diff = std::max(max_diff, (d_cost - own) / own);
      if (target > 0 && source + 1 == target) {
        prev_diff = (d_cost - own) / own;
      }
    }
    table.print(std::cout);
    std::cout << "  max diff vs own optimum: " << 100.0 * max_diff << "%";
    if (!std::isnan(prev_diff)) {
      std::cout << " | diff using previous week's params: "
                << 100.0 * prev_diff << "%";
    }
    std::cout << "\n\n";
  }
  std::cout << "paper shape check: transfer penalties stay within ~10-15% "
               "(the paper reports max 13%, <= 6% from the week before).\n";
  return 0;
}
