// Table 6: cross-week transfer of (t0, t∞) — each week's Δcost-optimal
// parameters evaluated on every other week, with the "week before" column
// (the paper's practical-implementation argument: estimating the optimum
// from last week's traces costs only a few percent).
//
// Both stages run on the campaign engine: a (week × tune) campaign
// optimizes each week's parameters concurrently, then a (target week ×
// source week) campaign scores every transfer cell.

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "exp/campaign.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table6_cross_week",
                      "Table 6 (cross-week parameter transfer)");

  // The paper uses the 6 weeks 2007-51..2008-03 plus the 2007/08 union.
  const std::vector<std::string> weeks = {"2007-51", "2007-52", "2007-53",
                                          "2008-01", "2008-02", "2008-03",
                                          "2007/08"};
  struct WeekData {
    std::unique_ptr<model::DiscretizedLatencyModel> model;
    std::unique_ptr<core::CostModel> cost;
    core::CostEvaluation opt;
  };
  std::vector<WeekData> data(weeks.size());

  // Stage 1 fills `data` through a side channel, so it always runs fully
  // in-process (recomputed per shard process); only the terminal transfer
  // campaign below checkpoints/shards via bench::run_campaign.
  const exp::CampaignRunner runner;

  // Stage 1: per-week Δcost optimization (each cell owns its week's slot).
  exp::CampaignAxes tune_axes;
  tune_axes.name = "table6_tune";
  tune_axes.scenario_axis = "week";
  tune_axes.strategy_axis = "stage";
  tune_axes.scenario_labels = weeks;
  tune_axes.strategy_labels = {"tune"};
  const auto tuned =
      runner.run(tune_axes, [&](const exp::CellContext& ctx) {
        WeekData& wd = data[ctx.scenario];
        wd.model = std::make_unique<model::DiscretizedLatencyModel>(
            bench::load_model(weeks[ctx.scenario]));
        wd.cost = std::make_unique<core::CostModel>(*wd.model);
        wd.opt = wd.cost->optimize_delayed_cost();
        return exp::CellMetrics{{"t0", wd.opt.t0},
                                {"t_inf", wd.opt.t_inf},
                                {"E_J", wd.opt.expectation},
                                {"d_cost", wd.opt.delta_cost}};
      });
  (void)tuned;

  // Stage 2: the full transfer matrix — source week's parameters scored on
  // the target week's model.
  exp::CampaignAxes transfer_axes;
  transfer_axes.name = "table6_transfer";
  transfer_axes.scenario_axis = "evaluated on";
  transfer_axes.strategy_axis = "params from";
  transfer_axes.scenario_labels = weeks;
  transfer_axes.strategy_labels = weeks;
  const auto transfer =
      bench::run_campaign(transfer_axes, [&](const exp::CellContext& ctx) {
        const core::CostEvaluation& p = data[ctx.strategy].opt;
        const auto e =
            data[ctx.scenario].cost->evaluate_delayed(p.t0, p.t_inf);
        return exp::CellMetrics{{"t0", p.t0},
                                {"t_inf", p.t_inf},
                                {"E_J", e.expectation},
                                {"d_cost", e.delta_cost}};
      });
  if (!transfer) return 0;  // shard mode: cells are on disk

  for (std::size_t target = 0; target < weeks.size(); ++target) {
    std::cout << "evaluated on " << weeks[target] << ":\n";
    report::Table table({"params from", "t0", "t_inf", "E_J", "d_cost"});
    const double own = transfer->mean(target, target, "d_cost");
    double max_diff = 0.0, prev_diff = std::nan("");
    for (std::size_t source = 0; source < weeks.size(); ++source) {
      const double d_cost = transfer->mean(target, source, "d_cost");
      table.row()
          .cell(weeks[source] + (source == target ? " (own)" : ""))
          .cell(transfer->mean(target, source, "t0"), 0)
          .cell(transfer->mean(target, source, "t_inf"), 0)
          .cell(report::seconds(transfer->mean(target, source, "E_J")))
          .cell(d_cost, 3);
      max_diff = std::max(max_diff, (d_cost - own) / own);
      if (target > 0 && source + 1 == target) {
        prev_diff = (d_cost - own) / own;
      }
    }
    table.print(std::cout);
    std::cout << "  max diff vs own optimum: " << 100.0 * max_diff << "%";
    if (!std::isnan(prev_diff)) {
      std::cout << " | diff using previous week's params: "
                << 100.0 * prev_diff << "%";
    }
    std::cout << "\n\n";
  }
  std::cout << "paper shape check: transfer penalties stay within ~10-15% "
               "(the paper reports max 13%, <= 6% from the week before).\n";
  return 0;
}
