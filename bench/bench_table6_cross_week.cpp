// Table 6: cross-week transfer of (t0, t∞) — each week's Δcost-optimal
// parameters evaluated on every other week, with the "week before" column
// (the paper's practical-implementation argument: estimating the optimum
// from last week's traces costs only a few percent).

#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "parallel/parallel_for.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table6_cross_week",
                      "Table 6 (cross-week parameter transfer)");

  // The paper uses the 6 weeks 2007-51..2008-03 plus the 2007/08 union.
  const std::vector<std::string> weeks = {"2007-51", "2007-52", "2007-53",
                                          "2008-01", "2008-02", "2008-03",
                                          "2007/08"};
  struct WeekData {
    model::DiscretizedLatencyModel model;
    core::CostEvaluation opt;
  };
  std::vector<WeekData> data;
  data.reserve(weeks.size());
  for (const auto& w : weeks) {
    data.push_back({bench::load_model(w), {}});
  }
  par::parallel_for(0, static_cast<std::int64_t>(weeks.size()),
                    [&](std::int64_t i) {
                      const core::CostModel cost(data[i].model);
                      data[i].opt = cost.optimize_delayed_cost();
                    });

  for (std::size_t target = 0; target < weeks.size(); ++target) {
    const core::CostModel cost(data[target].model);
    std::cout << "evaluated on " << weeks[target] << ":\n";
    report::Table table({"params from", "t0", "t_inf", "E_J", "d_cost"});
    double own = 0.0, max_diff = 0.0, prev_diff = std::nan("");
    for (std::size_t source = 0; source < weeks.size(); ++source) {
      const auto& p = data[source].opt;
      const auto e = cost.evaluate_delayed(p.t0, p.t_inf);
      table.row()
          .cell(weeks[source] + (source == target ? " (own)" : ""))
          .cell(p.t0, 0)
          .cell(p.t_inf, 0)
          .cell(report::seconds(e.expectation))
          .cell(e.delta_cost, 3);
      if (source == target) own = e.delta_cost;
    }
    for (std::size_t source = 0; source < weeks.size(); ++source) {
      const auto& p = data[source].opt;
      const auto e = cost.evaluate_delayed(p.t0, p.t_inf);
      max_diff = std::max(max_diff, (e.delta_cost - own) / own);
      if (target > 0 && source + 1 == target) {
        prev_diff = (e.delta_cost - own) / own;
      }
    }
    table.print(std::cout);
    std::cout << "  max diff vs own optimum: " << 100.0 * max_diff << "%";
    if (!std::isnan(prev_diff)) {
      std::cout << " | diff using previous week's params: "
                << 100.0 * prev_diff << "%";
    }
    std::cout << "\n\n";
  }
  std::cout << "paper shape check: transfer penalties stay within ~10-15% "
               "(the paper reports max 13%, <= 6% from the week before).\n";
  return 0;
}
