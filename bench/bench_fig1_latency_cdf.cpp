// Figure 1: cumulative density of latency — F_R (proper CDF of completed
// probes) vs F̃_R = (1 - rho) F_R (normalized over all submitted jobs).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "model/empirical_latency.hpp"
#include "report/series.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("fig1_latency_cdf", "Figure 1 (latency cdf)");

  const auto trace = traces::make_trace_by_name("2006-IX");
  const model::EmpiricalLatencyModel m(trace);
  const double rho = m.outlier_ratio();
  std::cout << "dataset 2006-IX: " << trace.size() << " probes, rho = "
            << rho << "\n\n";

  std::vector<double> ts, f_tilde, f_proper;
  for (double t = 0.0; t <= 3000.0; t += 10.0) {
    ts.push_back(t);
    const double ft = m.ftilde(t);
    f_tilde.push_back(ft);
    f_proper.push_back(ft / (1.0 - rho));
  }
  report::Figure fig("Figure 1: cumulative density of latency (2006-IX)",
                     "latency t (s)", "cumulative density");
  fig.add("F_R (cdf of completed probes)", ts, f_proper);
  fig.add("F~_R = (1-rho) F_R (all submitted jobs)", ts, f_tilde);
  fig.print(std::cout, 40);

  std::cout << "\nasymptotes: F_R -> 1, F~_R -> 1 - rho = " << 1.0 - rho
            << " (the paper's Figure 1 gap is the outlier mass rho)\n";
  return 0;
}
