// Ablation: latency-model estimator choice. The paper uses the raw ECDF;
// alternatives are a parametric fit (log-normal MLE on the completed
// probes + measured fault ratio) or a Weibull fit. How much do the
// resulting optima and Δcost decisions differ?

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "model/empirical_latency.hpp"
#include "model/parametric_latency.hpp"
#include "report/table.hpp"
#include "stats/fit.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("ablation_estimator",
                      "ECDF vs parametric latency estimators",
                      "dataset 2006-IX; decisions compared at the end");

  const auto trace = traces::make_trace_by_name("2006-IX");
  const auto latencies = trace.completed_latencies();
  const double rho = trace.stats().outlier_ratio;

  // Candidate models.
  const auto ecdf = model::DiscretizedLatencyModel::from_trace(trace, 1.0);
  const auto ln_fit = stats::fit_lognormal_mle(latencies);
  const model::ParametricLatencyModel ln_model(
      std::make_unique<stats::LogNormal>(ln_fit), rho, trace.timeout());
  const auto ln_disc = model::DiscretizedLatencyModel(ln_model, 1.0);
  const auto wb_fit = stats::fit_weibull_mle(latencies);
  const model::ParametricLatencyModel wb_model(
      std::make_unique<stats::Weibull>(wb_fit), rho, trace.timeout());
  const auto wb_disc = model::DiscretizedLatencyModel(wb_model, 1.0);

  std::cout << "fits: " << ln_fit.name() << " (KS "
            << stats::ks_statistic(latencies, ln_fit) << "), "
            << wb_fit.name() << " (KS "
            << stats::ks_statistic(latencies, wb_fit) << ")\n\n";

  report::Table table({"estimator", "opt t_inf (single)", "E_J single",
                       "opt t0/t_inf (delayed)", "E_J delayed",
                       "min d_cost"});
  const auto add_row = [&table](const std::string& label,
                                const model::DiscretizedLatencyModel& m) {
    const core::CostModel cost(m);
    const auto base = cost.baseline();
    const auto dopt = cost.delayed().optimize();
    const auto copt = cost.optimize_delayed_cost();
    table.row()
        .cell(label)
        .cell(base.t_inf, 0)
        .cell(base.metrics.expectation, 1)
        .cell(std::to_string(static_cast<int>(dopt.t0)) + "/" +
              std::to_string(static_cast<int>(dopt.t_inf)))
        .cell(dopt.metrics.expectation, 1)
        .cell(copt.delta_cost, 3);
  };
  add_row("ecdf (paper)", ecdf);
  add_row("lognormal MLE", ln_disc);
  add_row("weibull MLE", wb_disc);
  table.print(std::cout);
  std::cout << "\ntakeaway: the decision structure (delayed helps, "
               "d_cost < 1 attainable) is estimator-robust, but absolute "
               "optima shift when the fitted family misses the tail — the "
               "paper's choice of the raw ECDF is the safe default.\n";
  return 0;
}
