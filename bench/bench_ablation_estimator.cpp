// Ablation: latency-model estimator choice. The paper uses the raw ECDF;
// alternatives are a parametric fit (log-normal MLE on the completed
// probes + measured fault ratio) or a Weibull fit. How much do the
// resulting optima and Δcost decisions differ?
//
// One campaign cell per estimator: the fitted models are built once up
// front and shared read-only, each cell tunes all three strategies on its
// estimator, and the decision table falls out of the campaign result —
// which also gives the sweep checkpoint/shard support for free.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "exp/campaign.hpp"
#include "model/empirical_latency.hpp"
#include "model/parametric_latency.hpp"
#include "report/table.hpp"
#include "stats/fit.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("ablation_estimator",
                      "ECDF vs parametric latency estimators",
                      "dataset 2006-IX; decisions compared at the end");

  const auto trace = traces::make_trace_by_name("2006-IX");
  const auto latencies = trace.completed_latencies();
  const double rho = trace.stats().outlier_ratio;

  // Candidate models, shared read-only by the cells.
  std::vector<std::string> labels;
  std::vector<model::DiscretizedLatencyModel> models;
  labels.emplace_back("ecdf (paper)");
  models.push_back(model::DiscretizedLatencyModel::from_trace(trace, 1.0));
  const auto ln_fit = stats::fit_lognormal_mle(latencies);
  const model::ParametricLatencyModel ln_model(
      std::make_unique<stats::LogNormal>(ln_fit), rho, trace.timeout());
  labels.emplace_back("lognormal MLE");
  models.emplace_back(ln_model, 1.0);
  const auto wb_fit = stats::fit_weibull_mle(latencies);
  const model::ParametricLatencyModel wb_model(
      std::make_unique<stats::Weibull>(wb_fit), rho, trace.timeout());
  labels.emplace_back("weibull MLE");
  models.emplace_back(wb_model, 1.0);

  std::cout << "fits: " << ln_fit.name() << " (KS "
            << stats::ks_statistic(latencies, ln_fit) << "), "
            << wb_fit.name() << " (KS "
            << stats::ks_statistic(latencies, wb_fit) << ")\n\n";

  exp::CampaignAxes axes;
  axes.name = "ablation_estimator";
  axes.scenario_axis = "estimator";
  axes.strategy_axis = "stage";
  axes.scenario_labels = labels;
  axes.strategy_labels = {"tune"};
  axes.root_seed = 20090611;

  const auto result = bench::run_campaign(
      axes, [&models](const exp::CellContext& ctx) {
        const core::CostModel cost(models[ctx.scenario]);
        const auto base = cost.baseline();
        const auto dopt = cost.delayed().optimize();
        const auto copt = cost.optimize_delayed_cost();
        return exp::CellMetrics{{"t_inf_single", base.t_inf},
                                {"ej_single", base.metrics.expectation},
                                {"t0", dopt.t0},
                                {"t_inf", dopt.t_inf},
                                {"ej_delayed", dopt.metrics.expectation},
                                {"min_dcost", copt.delta_cost}};
      });
  if (!result) return 0;  // shard mode: cells are on disk

  report::Table table({"estimator", "opt t_inf (single)", "E_J single",
                       "opt t0/t_inf (delayed)", "E_J delayed",
                       "min d_cost"});
  for (std::size_t sc = 0; sc < labels.size(); ++sc) {
    table.row()
        .cell(labels[sc])
        .cell(result->mean(sc, 0, "t_inf_single"), 0)
        .cell(result->mean(sc, 0, "ej_single"), 1)
        .cell(std::to_string(
                  static_cast<int>(result->mean(sc, 0, "t0"))) +
              "/" +
              std::to_string(static_cast<int>(result->mean(sc, 0, "t_inf"))))
        .cell(result->mean(sc, 0, "ej_delayed"), 1)
        .cell(result->mean(sc, 0, "min_dcost"), 3);
  }
  table.print(std::cout);
  std::cout << "\ntakeaway: the decision structure (delayed helps, "
               "d_cost < 1 attainable) is estimator-robust, but absolute "
               "optima shift when the fitted family misses the tail — the "
               "paper's choice of the raw ECDF is the safe default.\n";
  return 0;
}
