// Table 2: optimal timeout, best E_J and sigma_J for b = 1..20 on
// 2006-IX, with improvements relative to b = 1 and to b - 1.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/multiple_submission.hpp"
#include "report/table.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table2_multi_optimal",
                      "Table 2 (optimal multi-submission per b)");

  const auto m = bench::load_model("2006-IX");
  report::Table table({"b", "opt t_inf", "best E_J", "sigma_J",
                       "dE_J/(b=1)", "db/(b=1)", "dE_J/(b-1)", "db/(b-1)"});
  std::vector<core::TimeoutOptimum> optima;
  for (int b = 1; b <= 20; ++b) {
    optima.push_back(core::MultipleSubmission(m, b).optimize());
  }
  const double e1 = optima.front().metrics.expectation;
  for (int b = 1; b <= 20; ++b) {
    const auto& opt = optima[b - 1];
    auto& row = table.row()
                    .cell(static_cast<long long>(b))
                    .cell(report::seconds(opt.t_inf))
                    .cell(report::seconds(opt.metrics.expectation))
                    .cell(report::seconds(opt.metrics.std_deviation));
    if (b == 1) {
      row.cell(std::string("-")).cell(std::string("-"))
          .cell(std::string("-")).cell(std::string("-"));
    } else {
      const double prev = optima[b - 2].metrics.expectation;
      row.percent((opt.metrics.expectation - e1) / e1, 0)
          .percent(static_cast<double>(b - 1), 0)
          .percent((opt.metrics.expectation - prev) / prev, 1)
          .percent(1.0 / static_cast<double>(b - 1), 1);
    }
  }
  table.print(std::cout);
  std::cout << "\npaper shape check: E_J drops steeply for small b "
               "(roughly -30%+ at b=2, about half by b=5) and saturates; "
               "sigma_J shrinks monotonically.\n";
  return 0;
}
