// Table 5: per-week minimal Δcost with the optimizing (t0, t∞) and E_J,
// plus the ±5 s stability analysis for weeks whose minimum is below 1.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "parallel/parallel_for.hpp"
#include "report/table.hpp"
#include "traces/datasets.hpp"

int main() {
  using namespace gridsub;
  bench::print_header("table5_weekly_cost",
                      "Table 5 (per-week delta-cost optima + stability)");

  std::vector<std::string> names;
  for (const auto& c : traces::all_datasets()) {
    if (c.name != "2006-IX") names.push_back(c.name);
  }
  names.emplace_back("2007/08");

  struct Row {
    core::CostEvaluation opt;
    core::StabilityReport stability;
  };
  std::vector<Row> rows(names.size());
  par::parallel_for(0, static_cast<std::int64_t>(names.size()),
                    [&](std::int64_t i) {
                      const auto m = bench::load_model(names[i]);
                      const core::CostModel cost(m);
                      rows[i].opt = cost.optimize_delayed_cost();
                      rows[i].stability =
                          cost.stability(rows[i].opt.t0, rows[i].opt.t_inf,
                                         5);
                    });

  report::Table table({"week", "opt t0", "opt t_inf", "opt d_cost", "E_J",
                       "max d_cost(+-5s)", "max d%"});
  int below_one = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& r = rows[i];
    if (r.opt.delta_cost < 1.0) ++below_one;
    auto& row = table.row()
                    .cell(names[i])
                    .cell(r.opt.t0, 0)
                    .cell(r.opt.t_inf, 0)
                    .cell(r.opt.delta_cost, 3)
                    .cell(report::seconds(r.opt.expectation));
    if (r.opt.delta_cost < 1.0) {
      row.cell(r.stability.max_delta_cost, 2)
          .percent(r.stability.max_rel_diff, 1);
    } else {
      row.cell(std::string("-")).cell(std::string("-"));
    }
  }
  table.print(std::cout);
  std::cout << "\n" << below_one << "/" << names.size()
            << " periods reach delta_cost < 1 (the paper reports 7/12; "
               "whether a week dips below 1 depends on its tail shape).\n"
            << "stability: the paper reports max +-5s degradations up to "
               "14%.\n";
  return 0;
}
