// Related-work baselines (paper §2): Subramani et al.'s K-distributed and
// K-Dual-queue schemes and Casanova's random redundant requests, executed
// on the DES grid and compared with the paper's WMS-mediated multiple
// submission at the same redundancy level.
//
// Expected shape (Subramani HPDC'02): mean slowdown decreases with K for
// 1..4; K-distributed beats K-dual on average (duplicates in priority
// queues start sooner), while K-dual is gentler to local traffic. Casanova
// (random placement) trails the load-aware schemes.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "sched/redundant_client.hpp"
#include "sim/grid.hpp"
#include "sim/strategy_client.hpp"

namespace {

struct RunResult {
  double mean_slowdown = 0.0;
  double mean_latency = 0.0;
  double mean_submissions = 0.0;
  std::size_t completed = 0;
};

constexpr std::size_t kClients = 6;
constexpr std::size_t kTasksPerClient = 20;
constexpr double kTaskRuntime = 600.0;
constexpr double kHorizon = 1.5e7;

gridsub::sim::GridConfig bench_grid() {
  auto config = gridsub::sim::GridConfig::egee_like();
  // Near-critical utilization (~98% of the 896 slots): queues are rarely
  // empty, as in Subramani's supercomputer-centre setting, so placement
  // quality matters.
  config.background.arrival_rate = 0.40;
  // Background lands load-aware but noisily, as on the real federation:
  // sites drift apart in queue depth, which is the uncertainty the
  // K-redundant schemes hedge.
  config.wms.dispatch = gridsub::sim::WmsConfig::Dispatch::kWeightedRandom;
  return config;
}

RunResult run_baseline(gridsub::sched::BaselineScheme scheme, int k) {
  using namespace gridsub;
  sim::GridSimulation grid(bench_grid());
  grid.warm_up(30000.0);
  std::vector<std::unique_ptr<sched::RedundantClient>> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    sched::BaselineSpec spec;
    spec.scheme = scheme;
    spec.k = k;
    spec.home_site = c % grid.elements().size();
    clients.push_back(std::make_unique<sched::RedundantClient>(
        grid, spec, kTasksPerClient, kTaskRuntime));
  }
  for (auto& c : clients) c->start();
  grid.simulator().run_until(grid.simulator().now() + kHorizon);

  RunResult r;
  for (const auto& c : clients) {
    const auto n = static_cast<double>(c->outcomes().size());
    r.mean_slowdown += c->mean_slowdown() * n;
    r.mean_latency += c->mean_latency() * n;
    r.mean_submissions += c->mean_submissions() * n;
    r.completed += c->outcomes().size();
  }
  const auto total = static_cast<double>(r.completed);
  r.mean_slowdown /= total;
  r.mean_latency /= total;
  r.mean_submissions /= total;
  return r;
}

RunResult run_wms_multiple(int b) {
  using namespace gridsub;
  sim::GridSimulation grid(bench_grid());
  grid.warm_up(30000.0);
  std::vector<std::unique_ptr<sim::StrategyClient>> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    sim::StrategySpec spec;
    spec.kind = b == 1 ? core::StrategyKind::kSingleResubmission
                       : core::StrategyKind::kMultipleSubmission;
    spec.b = b;
    spec.t_inf = 1500.0;
    clients.push_back(std::make_unique<sim::StrategyClient>(
        grid, spec, kTasksPerClient, kTaskRuntime));
  }
  for (auto& c : clients) c->start();
  grid.simulator().run_until(grid.simulator().now() + kHorizon);

  RunResult r;
  for (const auto& c : clients) {
    const auto n = static_cast<double>(c->outcomes().size());
    r.mean_latency += c->mean_latency() * n;
    r.mean_submissions += c->mean_submissions() * n;
    // StrategyClient reports latency; slowdown uses the shared runtime.
    r.mean_slowdown +=
        n * (c->mean_latency() + kTaskRuntime) / kTaskRuntime;
    r.completed += c->outcomes().size();
  }
  const auto total = static_cast<double>(r.completed);
  r.mean_slowdown /= total;
  r.mean_latency /= total;
  r.mean_submissions /= total;
  return r;
}

}  // namespace

int main() {
  using namespace gridsub;
  bench::print_header(
      "baseline_subramani",
      "related work §2: K-distributed / K-dual (Subramani), K-random "
      "(Casanova) vs the paper's multiple submission",
      "DES grid, 6 clients x 20 tasks, 600 s tasks, slowdown = "
      "(latency+runtime)/runtime");

  report::Table table({"scheme", "K", "mean slowdown", "mean J (s)",
                       "subs/task", "tasks done"});
  for (const int k : {1, 2, 3, 4}) {
    const auto kd = run_baseline(sched::BaselineScheme::kKDistributed, k);
    table.row()
        .cell(std::string(sched::to_string(
            sched::BaselineScheme::kKDistributed)))
        .cell(static_cast<long long>(k))
        .cell(kd.mean_slowdown, 3)
        .cell(kd.mean_latency, 1)
        .cell(kd.mean_submissions, 2)
        .cell(static_cast<long long>(kd.completed));
  }
  for (const int k : {2, 3, 4}) {
    const auto dual = run_baseline(sched::BaselineScheme::kKDualQueue, k);
    table.row()
        .cell(std::string(sched::to_string(
            sched::BaselineScheme::kKDualQueue)))
        .cell(static_cast<long long>(k))
        .cell(dual.mean_slowdown, 3)
        .cell(dual.mean_latency, 1)
        .cell(dual.mean_submissions, 2)
        .cell(static_cast<long long>(dual.completed));
  }
  for (const int k : {2, 4}) {
    const auto rnd = run_baseline(sched::BaselineScheme::kKRandom, k);
    table.row()
        .cell(std::string(sched::to_string(sched::BaselineScheme::kKRandom)))
        .cell(static_cast<long long>(k))
        .cell(rnd.mean_slowdown, 3)
        .cell(rnd.mean_latency, 1)
        .cell(rnd.mean_submissions, 2)
        .cell(static_cast<long long>(rnd.completed));
  }
  for (const int b : {1, 2, 4}) {
    const auto wms = run_wms_multiple(b);
    table.row()
        .cell("WMS multiple-submission")
        .cell(static_cast<long long>(b))
        .cell(wms.mean_slowdown, 3)
        .cell(wms.mean_latency, 1)
        .cell(wms.mean_submissions, 2)
        .cell(static_cast<long long>(wms.completed));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: slowdown falls with K (Subramani fig. "
               "shapes); load-aware placement (K-distributed) beats random "
               "placement (Casanova); direct site submission avoids the "
               "WMS matchmaking latency floor visible in the last rows.\n";
  return 0;
}
